"""Tests for the Groth16 proof system: completeness, soundness, sizes.

Uses a session-scoped keypair on the cubic circuit (x^3 + x + 5 = y) to
keep the pure-Python pairing cost bounded.
"""

import pytest

from repro.field.prime import BN254_R as R
from repro.snark import (
    ConstraintSystem,
    LinearCombination as LC,
    MalformedProof,
    Proof,
    ProvingKey,
    UnsatisfiedWitness,
    VerifyingKey,
    prove,
    setup,
    verify,
    verify_with_precheck,
)
from repro.curves.g1 import G1Point
from repro.curves.g2 import G2Point


class TestCompleteness:
    def test_valid_proof_verifies(self, cubic_circuit, cubic_keypair):
        cs, assignment = cubic_circuit
        proof = prove(cubic_keypair.proving_key, cs, assignment, seed=1)
        assert verify(cubic_keypair.verifying_key, [35], proof)

    def test_different_witness_same_circuit(self, cubic_circuit, cubic_keypair):
        cs, _ = cubic_circuit
        x = 5
        assignment = [1, x**3 + x + 5, x, x**2, x**3]
        proof = prove(cubic_keypair.proving_key, cs, assignment, seed=2)
        assert verify(cubic_keypair.verifying_key, [x**3 + x + 5], proof)

    def test_fresh_randomness_gives_distinct_proofs(self, cubic_circuit, cubic_keypair):
        """Zero-knowledge smoke test: proofs of the same witness differ."""
        cs, assignment = cubic_circuit
        p1 = prove(cubic_keypair.proving_key, cs, assignment, seed=10)
        p2 = prove(cubic_keypair.proving_key, cs, assignment, seed=11)
        assert p1.to_bytes() != p2.to_bytes()
        assert verify(cubic_keypair.verifying_key, [35], p1)
        assert verify(cubic_keypair.verifying_key, [35], p2)


class TestSoundness:
    def test_wrong_public_input_rejected(self, cubic_circuit, cubic_keypair):
        cs, assignment = cubic_circuit
        proof = prove(cubic_keypair.proving_key, cs, assignment, seed=1)
        assert not verify(cubic_keypair.verifying_key, [36], proof)

    def test_wrong_public_input_count_rejected(self, cubic_circuit, cubic_keypair):
        cs, assignment = cubic_circuit
        proof = prove(cubic_keypair.proving_key, cs, assignment, seed=1)
        assert not verify(cubic_keypair.verifying_key, [35, 1], proof)

    def test_tampered_proof_a_rejected(self, cubic_circuit, cubic_keypair):
        cs, assignment = cubic_circuit
        proof = prove(cubic_keypair.proving_key, cs, assignment, seed=1)
        tampered = Proof(proof.a + G1Point.generator(), proof.b, proof.c)
        assert not verify(cubic_keypair.verifying_key, [35], tampered)

    def test_tampered_proof_c_rejected(self, cubic_circuit, cubic_keypair):
        cs, assignment = cubic_circuit
        proof = prove(cubic_keypair.proving_key, cs, assignment, seed=1)
        tampered = Proof(proof.a, proof.b, proof.c + G1Point.generator())
        assert not verify(cubic_keypair.verifying_key, [35], tampered)

    def test_swapped_proofs_between_instances_rejected(
        self, cubic_circuit, cubic_keypair
    ):
        cs, _ = cubic_circuit
        x = 4
        other = [1, x**3 + x + 5, x, x**2, x**3]
        proof_for_other = prove(cubic_keypair.proving_key, cs, other, seed=3)
        assert not verify(cubic_keypair.verifying_key, [35], proof_for_other)

    def test_unsatisfying_witness_refused_at_prove_time(
        self, cubic_circuit, cubic_keypair
    ):
        cs, assignment = cubic_circuit
        bad = list(assignment)
        bad[1] = 36
        with pytest.raises(UnsatisfiedWitness):
            prove(cubic_keypair.proving_key, cs, bad, seed=1)

    def test_mismatched_circuit_rejected(self, cubic_keypair):
        other = ConstraintSystem()
        y = other.allocate_public("y")
        x = other.allocate_private("x")
        other.enforce(LC.variable(x), LC.variable(x), LC.variable(y))
        with pytest.raises(UnsatisfiedWitness, match="different circuit"):
            prove(cubic_keypair.proving_key, other, [1, 9, 3], seed=1)


class TestPrecheck:
    def test_valid_proof_passes_precheck(self, cubic_circuit, cubic_keypair):
        cs, assignment = cubic_circuit
        proof = prove(cubic_keypair.proving_key, cs, assignment, seed=1)
        assert verify_with_precheck(cubic_keypair.verifying_key, [35], proof)

    def test_infinity_point_rejected(self, cubic_circuit, cubic_keypair):
        cs, assignment = cubic_circuit
        proof = prove(cubic_keypair.proving_key, cs, assignment, seed=1)
        forged = Proof(G1Point.infinity(), proof.b, proof.c)
        with pytest.raises(MalformedProof):
            verify_with_precheck(cubic_keypair.verifying_key, [35], forged)

    def test_off_curve_point_rejected(self, cubic_circuit, cubic_keypair):
        cs, assignment = cubic_circuit
        proof = prove(cubic_keypair.proving_key, cs, assignment, seed=1)
        forged = Proof(G1Point(1, 1), proof.b, proof.c)
        with pytest.raises(MalformedProof):
            verify_with_precheck(cubic_keypair.verifying_key, [35], forged)


class TestSerialization:
    def test_proof_is_128_bytes(self, cubic_circuit, cubic_keypair):
        cs, assignment = cubic_circuit
        proof = prove(cubic_keypair.proving_key, cs, assignment, seed=1)
        assert proof.size_bytes() == 128

    def test_proof_roundtrip(self, cubic_circuit, cubic_keypair):
        cs, assignment = cubic_circuit
        proof = prove(cubic_keypair.proving_key, cs, assignment, seed=1)
        restored = Proof.from_bytes(proof.to_bytes())
        assert restored == proof
        assert verify(cubic_keypair.verifying_key, [35], restored)

    def test_proof_wrong_length_rejected(self):
        with pytest.raises(MalformedProof):
            Proof.from_bytes(b"\x00" * 100)

    def test_vk_roundtrip(self, cubic_keypair):
        vk = cubic_keypair.verifying_key
        restored = VerifyingKey.from_bytes(vk.to_bytes())
        assert restored.alpha_g1 == vk.alpha_g1
        assert restored.ic == vk.ic

    def test_vk_roundtrip_verifies(self, cubic_circuit, cubic_keypair):
        cs, assignment = cubic_circuit
        proof = prove(cubic_keypair.proving_key, cs, assignment, seed=1)
        restored = VerifyingKey.from_bytes(cubic_keypair.verifying_key.to_bytes())
        assert verify(restored, [35], proof)

    def test_pk_roundtrip(self, cubic_circuit, cubic_keypair):
        pk = cubic_keypair.proving_key
        restored = ProvingKey.from_bytes(pk.to_bytes())
        assert restored.a_query == pk.a_query
        assert restored.h_query == pk.h_query
        assert restored.num_public == pk.num_public

    def test_pk_roundtrip_proves(self, cubic_circuit, cubic_keypair):
        cs, assignment = cubic_circuit
        restored = ProvingKey.from_bytes(cubic_keypair.proving_key.to_bytes())
        proof = prove(restored, cs, assignment, seed=9)
        assert verify(cubic_keypair.verifying_key, [35], proof)

    def test_vk_size_grows_with_public_inputs(self):
        def circuit(n_public):
            cs = ConstraintSystem()
            pubs = [cs.allocate_public(f"p{i}") for i in range(n_public)]
            x = cs.allocate_private("x")
            for p in pubs:
                cs.enforce(LC.variable(x), LC.variable(x), LC.variable(p))
            return cs

        vk_small = setup(circuit(1), seed=5).verifying_key
        vk_large = setup(circuit(8), seed=5).verifying_key
        assert vk_large.size_bytes() - vk_small.size_bytes() == 7 * 32


class TestSetupDeterminism:
    def test_seeded_setup_is_deterministic(self, cubic_circuit):
        cs, _ = cubic_circuit
        kp1 = setup(cs, seed=99)
        kp2 = setup(cs, seed=99)
        assert kp1.verifying_key.to_bytes() == kp2.verifying_key.to_bytes()

    def test_different_seeds_differ(self, cubic_circuit):
        cs, _ = cubic_circuit
        kp1 = setup(cs, seed=99)
        kp2 = setup(cs, seed=100)
        assert kp1.verifying_key.to_bytes() != kp2.verifying_key.to_bytes()

    def test_keys_from_one_setup_reject_proofs_from_another(self, cubic_circuit):
        """Proofs are bound to a specific CRS."""
        cs, assignment = cubic_circuit
        kp1 = setup(cs, seed=99)
        kp2 = setup(cs, seed=100)
        proof = prove(kp1.proving_key, cs, assignment, seed=1)
        assert not verify(kp2.verifying_key, [35], proof)
