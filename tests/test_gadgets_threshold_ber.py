"""Tests for hard thresholding and the BER circuit."""

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.fixedpoint import FixedPointFormat
from repro.gadgets.ber import mismatch_budget, zk_ber
from repro.gadgets.threshold import zk_hard_threshold, zk_hard_threshold_vector

FMT = FixedPointFormat(frac_bits=16, total_bits=48)


class TestHardThreshold:
    @pytest.mark.parametrize(
        "x,beta,expected",
        [
            (0.6, 0.5, 1),
            (0.5, 0.5, 1),  # boundary: >= beta
            (0.4999, 0.5, 0),
            (-1.0, 0.5, 0),
            (0.0, 0.0, 1),
            (-0.1, 0.0, 0),
        ],
    )
    def test_semantics(self, x, beta, expected):
        b = CircuitBuilder("th")
        w = b.private_input("x", FMT.encode(x))
        out = zk_hard_threshold(b, FMT, w, beta=beta)
        b.check()
        assert out.value == expected

    def test_vector(self):
        b = CircuitBuilder("th")
        values = [0.1, 0.5, 0.9]
        ws = [b.private_input(f"x{i}", FMT.encode(v)) for i, v in enumerate(values)]
        outs = zk_hard_threshold_vector(b, FMT, ws)
        b.check()
        assert [w.value for w in outs] == [0, 1, 1]

    def test_output_is_boolean_constrained(self):
        """The threshold bit must be usable directly as a watermark bit."""
        b = CircuitBuilder("th")
        w = b.private_input("x", FMT.encode(0.7))
        out = zk_hard_threshold(b, FMT, w)
        # xor with itself must synthesize fine (requires well-formed bit).
        assert b.xor_(out, out).value == 0
        b.check()


class TestMismatchBudget:
    @pytest.mark.parametrize(
        "bits,theta,expected",
        [(32, 0.0, 0), (32, 0.1, 3), (32, 0.5, 16), (8, 1.0, 8), (8, 0.124, 0)],
    )
    def test_values(self, bits, theta, expected):
        assert mismatch_budget(bits, theta) == expected

    def test_invalid_theta(self):
        with pytest.raises(ValueError):
            mismatch_budget(8, 1.5)
        with pytest.raises(ValueError):
            mismatch_budget(8, -0.1)


class TestZkBer:
    def _run(self, wm, ext, theta):
        b = CircuitBuilder("ber")
        wm_w = [b.allocate_bit(f"w{i}", v) for i, v in enumerate(wm)]
        ex_w = [b.allocate_bit(f"e{i}", v) for i, v in enumerate(ext)]
        result = zk_ber(b, wm_w, ex_w, theta)
        b.check()
        return result

    def test_identical_bits_pass_zero_theta(self):
        result = self._run([1, 0, 1, 1], [1, 0, 1, 1], theta=0.0)
        assert result.valid.value == 1
        assert result.mismatches.value == 0

    def test_one_flip_fails_zero_theta(self):
        result = self._run([1, 0, 1, 1], [1, 1, 1, 1], theta=0.0)
        assert result.valid.value == 0
        assert result.mismatches.value == 1

    def test_one_flip_passes_quarter_theta(self):
        result = self._run([1, 0, 1, 1], [1, 1, 1, 1], theta=0.25)
        assert result.valid.value == 1

    def test_boundary_exactly_at_budget(self):
        # 2 mismatches of 8 bits, theta = 0.25 -> budget 2 -> pass.
        wm = [0] * 8
        ext = [1, 1] + [0] * 6
        assert self._run(wm, ext, 0.25).valid.value == 1

    def test_boundary_one_over_budget(self):
        wm = [0] * 8
        ext = [1, 1, 1] + [0] * 5
        assert self._run(wm, ext, 0.25).valid.value == 0

    def test_all_bits_wrong(self):
        result = self._run([0, 1] * 4, [1, 0] * 4, theta=0.5)
        assert result.mismatches.value == 8
        assert result.valid.value == 0

    def test_theta_one_always_passes(self):
        assert self._run([0, 1] * 4, [1, 0] * 4, theta=1.0).valid.value == 1

    def test_length_mismatch(self):
        b = CircuitBuilder("ber")
        wm = [b.allocate_bit("w", 1)]
        with pytest.raises(ValueError):
            zk_ber(b, wm, [], 0.0)

    def test_empty_watermark_rejected(self):
        b = CircuitBuilder("ber")
        with pytest.raises(ValueError):
            zk_ber(b, [], [], 0.0)
