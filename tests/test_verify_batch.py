"""Verifier-side scaling: the shared multi-Miller-loop kernel, RLC batch
verification, the batch wire codecs, and the service's ``/verify-batch``
audit endpoint.

The adversarial batches are the load-bearing tests: a batch containing
exactly one invalid proof (wrong public input, tampered A or C, or a
proof filed under the wrong verifying key) MUST reject -- a batch check
that averages away a single forgery is worse than no check at all.
"""

import json

import numpy as np
import pytest

from repro.curves.g1 import G1Point
from repro.curves.g2 import G2Point
from repro.curves.pairing import (
    final_exponentiation,
    fp12_from_ints,
    fp12_to_ints,
    multi_miller_loop,
    multi_pairing,
    precompute_g2,
)
from repro.field.backend import gmpy2_available, set_field_backend
from repro.field.tower import Fp12Element
from repro.parallel import ProcessBackend, SerialBackend
from repro.snark import (
    ConstraintSystem,
    LinearCombination as LC,
    Proof,
    prepare_verifying_key,
    prove,
    setup,
    verify_batch,
    verify_batch_grouped,
    verify_batch_prepared,
)


def _square_circuit():
    cs = ConstraintSystem()
    y = cs.allocate_public("y")
    x = cs.allocate_private("x")
    cs.enforce(LC.variable(x), LC.variable(x), LC.variable(y))
    return cs


@pytest.fixture(scope="module")
def square_batch():
    """Square circuit, keypair, and five valid ``(publics, proof)`` cases."""
    cs = _square_circuit()
    keypair = setup(cs, seed=31)
    batch = [
        ([v * v], prove(keypair.proving_key, cs, [1, v * v, v], seed=v))
        for v in (2, 3, 5, 8, 13)
    ]
    return cs, keypair, batch


@pytest.fixture(scope="module")
def cubic_batch(cubic_circuit, cubic_keypair):
    cs, assignment = cubic_circuit
    proofs = [prove(cubic_keypair.proving_key, cs, assignment, seed=s)
              for s in (41, 42)]
    return [([35], proof) for proof in proofs]


# -- the shared Miller-loop kernel ---------------------------------------------


class TestMultiMillerKernel:
    @pytest.fixture(scope="class")
    def pairs(self):
        g, h = G1Point.generator(), G2Point.generator()
        return [(g * a, h * b) for a, b in ((3, 5), (7, 11), (13, 2), (19, 23))]

    @pytest.mark.parametrize("variant", ["optimal", "ate"])
    def test_shared_loop_matches_per_pair_product(self, pairs, variant):
        """One shared squaring chain == the product of independent loops."""
        product = Fp12Element.one()
        for pair in pairs:
            product = product * multi_pairing([pair], variant=variant)
        shared = final_exponentiation(multi_miller_loop(pairs, variant))
        assert shared == product

    def test_mixed_live_and_precomputed_pairs_agree(self, pairs):
        mixed = [
            (p, precompute_g2(q) if i % 2 else q)
            for i, (p, q) in enumerate(pairs)
        ]
        assert multi_miller_loop(mixed) == multi_miller_loop(pairs)

    @pytest.mark.parametrize("variant", ["optimal", "ate"])
    def test_precomputed_variant_must_match(self, pairs, variant):
        other = "ate" if variant == "optimal" else "optimal"
        p, q = pairs[0]
        with pytest.raises(ValueError, match="variant"):
            multi_miller_loop([(p, precompute_g2(q, variant=variant))], other)

    def test_unknown_variant_rejected(self, pairs):
        with pytest.raises(ValueError, match="variant"):
            multi_miller_loop(pairs, "weil")

    def test_infinity_pairs_contribute_nothing(self, pairs):
        padded = pairs + [
            (G1Point.infinity(), G2Point.generator()),
            (G1Point.generator(), G2Point.infinity()),
        ]
        assert multi_miller_loop(padded) == multi_miller_loop(pairs)

    def test_empty_product_is_one(self):
        assert multi_miller_loop([]) == Fp12Element.one()

    def test_fp12_int_roundtrip(self, pairs):
        f = multi_miller_loop(pairs)
        flat = fp12_to_ints(f)
        assert len(flat) == 12 and all(isinstance(v, int) for v in flat)
        assert fp12_from_ints(flat) == f

    def test_fp12_from_ints_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            fp12_from_ints([0] * 11)


# -- adversarial batches -------------------------------------------------------


class TestAdversarialBatches:
    def test_valid_batch_accepted_seeded_and_unseeded(self, square_batch):
        _, keypair, batch = square_batch
        pvk = prepare_verifying_key(keypair.verifying_key)
        assert verify_batch(keypair.verifying_key, batch, seed=1)
        assert verify_batch_prepared(pvk, batch, seed=1)
        # seed=None takes fresh entropy from `secrets` -- still accepts.
        assert verify_batch_prepared(pvk, batch)

    def test_one_wrong_public_input_rejects_batch(self, square_batch):
        _, keypair, batch = square_batch
        pvk = prepare_verifying_key(keypair.verifying_key)
        tampered = list(batch)
        tampered[3] = ([26], tampered[3][1])
        assert not verify_batch(keypair.verifying_key, tampered, seed=1)
        assert not verify_batch_prepared(pvk, tampered, seed=1)

    def test_one_tampered_a_rejects_batch(self, square_batch):
        _, keypair, batch = square_batch
        good = batch[2][1]
        forged = Proof(good.a + G1Point.generator(), good.b, good.c)
        tampered = list(batch)
        tampered[2] = (batch[2][0], forged)
        assert not verify_batch_prepared(
            prepare_verifying_key(keypair.verifying_key), tampered, seed=1
        )

    def test_one_tampered_c_rejects_batch(self, square_batch):
        _, keypair, batch = square_batch
        good = batch[4][1]
        forged = Proof(good.a, good.b, good.c + G1Point.generator())
        tampered = list(batch)
        tampered[4] = (batch[4][0], forged)
        assert not verify_batch_prepared(
            prepare_verifying_key(keypair.verifying_key), tampered, seed=1
        )

    def test_instance_length_mismatch_rejects(self, square_batch):
        _, keypair, batch = square_batch
        bad = [(batch[0][0] + [1], batch[0][1])]
        assert not verify_batch(keypair.verifying_key, bad, seed=1)

    def test_empty_batch_is_vacuously_true(self, square_batch):
        _, keypair, _ = square_batch
        assert verify_batch(keypair.verifying_key, [], seed=1)


class TestGroupedBatches:
    def test_two_keys_two_groups_all_accepted(
        self, square_batch, cubic_batch, cubic_keypair
    ):
        _, keypair, batch = square_batch
        items = [(keypair.verifying_key, publics, proof)
                 for publics, proof in batch[:3]]
        items += [(cubic_keypair.verifying_key, publics, proof)
                  for publics, proof in cubic_batch]
        groups = verify_batch_grouped(items, seed=1)
        assert len(groups) == 2
        assert all(g.accepted for g in groups)
        assert groups[0].indices == (0, 1, 2)
        assert groups[1].indices == (3, 4)
        assert groups[0].vk_digest != groups[1].vk_digest

    def test_wrong_key_proof_rejects_only_its_group(
        self, square_batch, cubic_batch, cubic_keypair
    ):
        """A cubic proof smuggled under the square VK poisons exactly the
        square group; the honest cubic group still accepts."""
        _, keypair, batch = square_batch
        items = [(keypair.verifying_key, publics, proof)
                 for publics, proof in batch[:2]]
        items.append((keypair.verifying_key, [35], cubic_batch[0][1]))
        items += [(cubic_keypair.verifying_key, publics, proof)
                  for publics, proof in cubic_batch]
        groups = verify_batch_grouped(items, seed=1)
        assert len(groups) == 2
        assert not groups[0].accepted
        assert groups[1].accepted

    def test_prepared_and_plain_keys_bucket_together(self, square_batch):
        """The group digest is over the plain VK bytes, so a prepared and
        a plain handle to the same key land in one batched check."""
        _, keypair, batch = square_batch
        pvk = prepare_verifying_key(keypair.verifying_key)
        items = [
            (pvk, batch[0][0], batch[0][1]),
            (keypair.verifying_key, batch[1][0], batch[1][1]),
        ]
        groups = verify_batch_grouped(items, seed=1)
        assert len(groups) == 1
        assert groups[0].accepted and groups[0].indices == (0, 1)


# -- backend parity ------------------------------------------------------------


class TestBackendParity:
    def test_serial_and_process_backends_agree(self, square_batch):
        _, keypair, batch = square_batch
        pvk = prepare_verifying_key(keypair.verifying_key)
        tampered = list(batch)
        good = batch[1][1]
        tampered[1] = (batch[1][0], Proof(good.a, good.b, -good.c))
        process = ProcessBackend(2, min_miller_pairs=2)
        try:
            for backend in (SerialBackend(), process):
                assert verify_batch_prepared(pvk, batch, seed=3, backend=backend)
                assert not verify_batch_prepared(
                    pvk, tampered, seed=3, backend=backend
                )
        finally:
            process.close()

    @pytest.mark.parametrize(
        "backend_name",
        [
            "python",
            pytest.param(
                "gmpy2",
                marks=pytest.mark.skipif(
                    not gmpy2_available(), reason="gmpy2 not installed"
                ),
            ),
        ],
    )
    def test_verdicts_identical_across_field_backends(
        self, square_batch, backend_name
    ):
        _, keypair, batch = square_batch
        tampered = list(batch)
        tampered[0] = ([27], tampered[0][1])
        previous = set_field_backend(backend_name)
        try:
            pvk = prepare_verifying_key(keypair.verifying_key)
            assert verify_batch_prepared(pvk, batch, seed=5)
            assert not verify_batch_prepared(pvk, tampered, seed=5)
        finally:
            set_field_backend(previous)


# -- engine integration --------------------------------------------------------


class TestEngineBatch:
    def test_engine_verify_batch(self):
        from repro.engine import ProvingEngine

        def synthesize(b):
            out = b.public_output("o")
            wx = b.private_input("x", 3)
            b.bind_output(out, b.mul(wx, wx))
            return None

        engine = ProvingEngine()
        job = engine.prove_job("sq", synthesize, seed=1)
        job2 = engine.prove_job("sq", synthesize, seed=2)
        cases = [
            (job.public_values, job.proof),
            (job2.public_values, job2.proof),
        ]
        assert engine.verify_batch(job.compiled, cases, seed=1)
        assert engine.stats.batch_verifications == 1
        assert engine.stats.verifications == 2
        bad = [(list(job.public_values), job2.proof),
               ([v + 1 for v in job2.public_values], job2.proof)]
        assert not engine.verify_batch(job.compiled, bad, seed=1)


# -- wire codecs ---------------------------------------------------------------


class TestBatchWireCodecs:
    def test_request_roundtrip(self):
        from repro.service import wire

        request = wire.VerifyBatchRequest(claim_ids=["a" * 64, "b" * 64], seed=7)
        assert wire.decode_verify_batch_request(
            wire.encode_verify_batch_request(request)
        ) == request

    def test_request_roundtrip_empty_and_unseeded(self):
        from repro.service import wire

        request = wire.VerifyBatchRequest(claim_ids=[], seed=None)
        assert wire.decode_verify_batch_request(
            wire.encode_verify_batch_request(request)
        ) == request

    def test_result_roundtrip(self):
        from repro.service import wire

        result = wire.VerifyBatchResult(
            verdicts=[
                wire.BatchClaimVerdict("c" * 64, True, "ok", 200),
                wire.BatchClaimVerdict("d" * 64, False, "revoked", 409),
                wire.BatchClaimVerdict("e" * 64, False, "bad points", 400),
            ],
            groups=[
                wire.BatchGroupVerdict("f" * 64, ["c" * 64], True, 0.125),
                wire.BatchGroupVerdict("0" * 64, [], False, 0.0),
            ],
        )
        assert wire.decode_verify_batch_result(
            wire.encode_verify_batch_result(result)
        ) == result

    def test_corrupted_frame_rejected(self):
        from repro.service import wire

        frame = bytearray(wire.encode_verify_batch_request(
            wire.VerifyBatchRequest(claim_ids=["a" * 64])
        ))
        frame[len(frame) // 2] ^= 0x10
        with pytest.raises(wire.WireFormatError):
            wire.decode_verify_batch_request(bytes(frame))

    def test_trailing_bytes_rejected(self):
        from repro.service import wire

        payload = wire._pack_verify_batch_request(
            wire.VerifyBatchRequest(claim_ids=["a" * 64])
        ) + b"\x00"
        frame = wire.encode_frame(wire.MSG_VERIFY_BATCH_REQUEST, payload)
        with pytest.raises(wire.WireFormatError, match="trailing"):
            wire.decode_verify_batch_request(frame)

    def test_wrong_message_type_rejected(self):
        from repro.service import wire

        frame = wire.encode_frame(wire.MSG_VERIFY_BATCH_RESULT, b"")
        with pytest.raises(wire.WireFormatError):
            wire.decode_verify_batch_request(frame)


# -- the service audit endpoint ------------------------------------------------


def _off_subgroup_g2() -> G2Point:
    """A G2 point on the twist curve but outside the order-r subgroup --
    the forgery class that point *decompression* cannot catch (BN254's G2
    cofactor is huge), only the explicit subgroup check."""
    from repro.curves.bn254 import TWIST_B
    from repro.curves.serialize import PointDecodingError, _fp2_sqrt
    from repro.field.tower import Fp2Element

    for offset in range(64):
        candidate_x = Fp2Element(1 + offset, 1)
        rhs = candidate_x.square() * candidate_x + TWIST_B
        try:
            y = _fp2_sqrt(rhs)
        except (PointDecodingError, ValueError):
            continue
        point = G2Point(candidate_x, y)
        if not point.in_subgroup():
            return point
    raise AssertionError("no off-subgroup twist point found")


@pytest.fixture(scope="module")
def audit_service(tmp_path_factory):
    """A proof service whose registry is populated directly (no proving):

    two circuit shapes, each with trapdoor-forged valid claims, plus a
    revoked claim, a still-queued claim, and -- injected by the tests
    that need it -- a claim with a malformed stored proof.
    """
    import dataclasses

    from repro.nn import mnist_mlp_scaled
    from repro.service import ClaimRegistry, ProofServer, ProofService, wire
    from repro.service.registry import ClaimRecord
    from repro.snark import setup_with_trapdoor, simulate_proof
    from repro.watermark.keys import WatermarkKeys
    from repro.zkrownn import (
        CircuitConfig,
        build_extraction_circuit,
        model_digest,
        public_inputs_for,
    )
    from repro.zkrownn.prover import _claim_for
    from repro.circuit import FixedPointFormat

    rng = np.random.default_rng(77)
    shapes = []
    for hidden, wm_bits in ((4, 4), (6, 3)):
        model = mnist_mlp_scaled(input_dim=4, hidden=hidden, rng=rng)
        keys = WatermarkKeys(
            embed_layer=1,
            target_class=0,
            trigger_inputs=rng.normal(size=(2, 4)),
            projection=rng.normal(size=(hidden, wm_bits)),
            signature=(rng.random(wm_bits) < 0.5).astype(np.float64),
        )
        keys.validate()
        config = CircuitConfig(
            theta=1.0,  # any BER passes: the statement must be provable
            fixed_point=FixedPointFormat(frac_bits=10, total_bits=32),
        )
        circuit = build_extraction_circuit(model, keys, config)
        keypair, trapdoor = setup_with_trapdoor(
            circuit.constraint_system, seed=hidden
        )
        shapes.append((model, keys, config, circuit, keypair, trapdoor))

    root = tmp_path_factory.mktemp("audit-registry")
    registry = ClaimRegistry(root)
    claim_ids = {}

    def inject(tag, shape_index, claim, state="done"):
        model, keys, config, _, keypair, _ = shapes[shape_index]
        digest = f"{shape_index:064x}"
        claim_id = f"{tag:0>64}"
        registry.store_verifying_key(digest, keypair.verifying_key.to_bytes())
        registry.store_model_bytes(
            model_digest(model, keys.embed_layer), wire.encode_model(model)
        )
        registry.register(ClaimRecord(
            claim_id=claim_id,
            model_digest=model_digest(model, keys.embed_layer),
            state=state,
            circuit_digest=digest if state == "done" else "",
        ))
        if claim is not None:
            registry.store_claim_bytes(claim_id, wire.encode_claim(claim))
        claim_ids[tag] = claim_id
        return claim_id

    def forge(shape_index, seed):
        model, keys, config, _, _, trapdoor = shapes[shape_index]
        cs = shapes[shape_index][3].constraint_system
        publics = public_inputs_for(
            model, config.theta, keys.num_bits, keys.embed_layer, config
        )
        proof = simulate_proof(trapdoor, cs, publics, seed=seed)
        return _claim_for(model, keys, config, proof)

    inject("good-a1", 0, forge(0, 1))
    inject("good-a2", 0, forge(0, 2))
    inject("good-b1", 1, forge(1, 3))
    revoked_id = inject("revoked", 0, forge(0, 4))
    registry.revoke(revoked_id, "dispute lost")
    inject("queued", 1, None, state="queued")

    service = ProofService(registry)
    server = ProofServer(service).start(start_service=False)
    yield server, claim_ids, shapes, forge, inject
    server.stop()


class TestServiceBatchVerify:
    def test_binary_endpoint_sweeps_groups_and_statuses(self, audit_service):
        from repro.service import ServiceClient

        server, ids, _, _, _ = audit_service
        client = ServiceClient(server.url)
        result = client.verify_batch(
            [ids["good-a1"], ids["good-a2"], ids["good-b1"],
             ids["revoked"], ids["queued"], "no-such-claim"],
            seed=9,
        )
        by_id = {v.claim_id: v for v in result.verdicts}
        assert by_id[ids["good-a1"]].accepted
        assert by_id[ids["good-a1"]].status == 200
        assert by_id[ids["good-a2"]].accepted
        assert by_id[ids["good-b1"]].accepted
        assert by_id[ids["revoked"]].status == 409
        assert by_id[ids["queued"]].status == 409
        assert by_id["no-such-claim"].status == 404
        assert not by_id["no-such-claim"].accepted
        # Two circuit shapes -> two batched pairing checks, both accepted.
        assert len(result.groups) == 2
        assert all(g.accepted for g in result.groups)
        assert all(g.seconds > 0 for g in result.groups)
        sweep = {cid for g in result.groups for cid in g.claim_ids}
        assert sweep == {ids["good-a1"], ids["good-a2"], ids["good-b1"]}

    def test_json_endpoint_matches_binary(self, audit_service):
        from repro.service import ServiceClient

        server, ids, _, _, _ = audit_service
        client = ServiceClient(server.url)
        payload = client._json(
            "POST", "/verify-batch",
            body=json.dumps(
                {"claim_ids": [ids["good-a1"], ids["revoked"]], "seed": 9}
            ).encode(),
            content_type="application/json",
        )
        verdicts = {v["claim_id"]: v for v in payload["verdicts"]}
        assert verdicts[ids["good-a1"]]["accepted"] is True
        assert verdicts[ids["revoked"]]["status"] == 409
        assert len(payload["groups"]) == 1

    def test_json_endpoint_without_list_is_400(self, audit_service):
        from repro.service import ServiceClient, ServiceError

        server, _, _, _, _ = audit_service
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError) as excinfo:
            client._json(
                "POST", "/verify-batch",
                body=b'{"claim_ids": "not-a-list"}',
                content_type="application/json",
            )
        assert excinfo.value.status == 400

    def test_audit_cli_passes_then_fails_on_malformed_proof(
        self, audit_service, capsys
    ):
        """The registry-wide `zkrownn audit` sweep: PASS over the healthy
        registry, then a claim whose stored proof carries an on-curve but
        off-subgroup G2 point flips exactly its group to FAIL with a
        400-class verdict."""
        import dataclasses

        from repro.cli import main as cli_main
        from repro.service import ServiceClient

        server, ids, _, forge, inject = audit_service
        assert cli_main(["audit", "--url", server.url, "--seed", "9"]) == 0
        out = capsys.readouterr().out
        assert "audit result: PASSED" in out
        assert "[SKIP]" in out  # the queued claim does not fail the audit
        assert "batched pairing check" in out

        good = forge(1, 5)
        bad_proof = Proof(good.proof.a, _off_subgroup_g2(), good.proof.c)
        malformed = dataclasses.replace(good, proof_bytes=bad_proof.to_bytes())
        inject("malformed", 1, malformed)

        assert cli_main(["audit", "--url", server.url, "--seed", "9"]) == 1
        out = capsys.readouterr().out
        assert "audit result: FAILED" in out
        assert "status=400" in out

        # The 400-class verdict also surfaces through the client API, and
        # only the malformed claim's group rejects.
        result = ServiceClient(server.url).audit_registry(seed=9)
        by_id = {v.claim_id: v for v in result.verdicts}
        assert by_id[ids["malformed"]].status == 400
        assert not by_id[ids["malformed"]].accepted
        assert by_id[ids["good-a1"]].accepted
        by_digest = {g.circuit_digest: g for g in result.groups}
        assert by_digest[f"{0:064x}"].accepted
        assert not by_digest[f"{1:064x}"].accepted
