"""Tests for watermark robustness under removal attacks.

The DeepSigns claims the paper repeats: robustness to fine-tuning, pruning
and overwriting.  The fixture model is small, so thresholds are chosen to
be meaningful but not razor-thin; EXPERIMENTS.md discusses how robustness
scales with feature width.
"""

import numpy as np
import pytest

from repro.nn import evaluate_classifier
from repro.watermark import (
    extract_watermark,
    finetune_attack,
    overwrite_attack,
    prune_attack,
    quantization_attack,
    weight_noise_attack,
)


class TestFinetuneAttack:
    def test_watermark_survives(self, watermarked_mlp):
        model, keys, data = watermarked_mlp
        attacked = finetune_attack(model, data.x_train, data.y_train, epochs=2)
        assert extract_watermark(attacked, keys).ber <= 0.125

    def test_attack_does_not_mutate_original(self, watermarked_mlp):
        model, keys, data = watermarked_mlp
        before = [w.copy() for w in model.get_weights()]
        finetune_attack(model, data.x_train, data.y_train, epochs=1)
        for a, b in zip(model.get_weights(), before):
            np.testing.assert_allclose(a, b)

    def test_attack_changes_weights(self, watermarked_mlp):
        model, keys, data = watermarked_mlp
        attacked = finetune_attack(model, data.x_train, data.y_train, epochs=1)
        changed = any(
            not np.allclose(a, b)
            for a, b in zip(attacked.get_weights(), model.get_weights())
        )
        assert changed


class TestPruneAttack:
    @pytest.mark.parametrize("fraction", [0.1, 0.3, 0.5])
    def test_watermark_survives_pruning(self, watermarked_mlp, fraction):
        model, keys, _ = watermarked_mlp
        attacked = prune_attack(model, fraction)
        assert extract_watermark(attacked, keys).ber <= 0.125

    def test_pruning_zeroes_weights(self, watermarked_mlp):
        model, _, _ = watermarked_mlp
        attacked = prune_attack(model, 0.5)
        w = attacked.layers[0].params["W"]
        assert (w == 0).mean() >= 0.45

    def test_invalid_fraction(self, watermarked_mlp):
        model, _, _ = watermarked_mlp
        with pytest.raises(ValueError):
            prune_attack(model, 1.5)

    def test_zero_fraction_is_identity(self, watermarked_mlp):
        model, _, _ = watermarked_mlp
        attacked = prune_attack(model, 0.0)
        for a, b in zip(attacked.get_weights(), model.get_weights()):
            np.testing.assert_allclose(a, b)


class TestNoiseAttack:
    def test_small_noise_survives(self, watermarked_mlp):
        model, keys, _ = watermarked_mlp
        attacked = weight_noise_attack(model, scale=0.02, seed=3)
        assert extract_watermark(attacked, keys).ber <= 0.125

    def test_noise_changes_weights(self, watermarked_mlp):
        model, _, _ = watermarked_mlp
        attacked = weight_noise_attack(model, scale=0.1, seed=3)
        assert not np.allclose(
            attacked.layers[0].params["W"], model.layers[0].params["W"]
        )


class TestQuantizationAttack:
    @pytest.mark.parametrize("bits", [4, 6, 8])
    def test_watermark_survives_quantization(self, watermarked_mlp, bits):
        model, keys, _ = watermarked_mlp
        attacked = quantization_attack(model, bits)
        assert extract_watermark(attacked, keys).ber <= 0.125

    def test_quantization_reduces_distinct_values(self, watermarked_mlp):
        model, _, _ = watermarked_mlp
        attacked = quantization_attack(model, 4)
        w = attacked.layers[0].params["W"]
        assert len(np.unique(np.round(w, 10))) <= 17  # 2^4 + 1 grid points

    def test_invalid_bits(self, watermarked_mlp):
        model, _, _ = watermarked_mlp
        with pytest.raises(ValueError):
            quantization_attack(model, 0)


class TestOverwriteAttack:
    def test_owner_watermark_mostly_survives(self, watermarked_mlp):
        """Overwriting with an adversary watermark must not erase the
        owner's: BER stays far below the 0.5 of an unrelated model."""
        model, keys, data = watermarked_mlp
        attacked = overwrite_attack(
            model, data.x_train, data.y_train, embed_layer=1, wm_bits=8
        )
        assert extract_watermark(attacked, keys).ber <= 0.375

    def test_attacked_model_still_functional(self, watermarked_mlp):
        model, keys, data = watermarked_mlp
        attacked = overwrite_attack(
            model, data.x_train, data.y_train, embed_layer=1, wm_bits=8
        )
        assert evaluate_classifier(attacked, data.x_test, data.y_test) > 0.25
