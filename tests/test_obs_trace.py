"""Per-claim tracing: span/tracer units, end-to-end lifecycle
completeness over HTTP, and trace continuity across a chaos-seeded
replica failover.

The acceptance contract: a claim submitted through ``ServiceClient``
yields a span tree at ``GET /claims/<id>/trace`` covering queue-wait
through prove, every span carrying the client-minted trace id -- even
when the first replica dies mid-prove and the claim is rescued.
"""

import time

import pytest

from repro.circuit import FixedPointFormat
from repro.engine import ProvingEngine
from repro.obs import (
    NULL_SPAN,
    Span,
    Tracer,
    current_span,
    get_metrics,
    new_trace_id,
    reinit_metrics_after_fork,
    set_obs_enabled,
)
from repro.obs.trace import record_fault, sanitize_trace_id
from repro.service import (
    ClaimRegistry,
    FaultPlan,
    FaultSpec,
    ProofScheduler,
    ProofServer,
    ProofService,
    ServiceClient,
    ServiceError,
)
from repro.zkrownn import CircuitConfig


@pytest.fixture()
def obs_on():
    previous = set_obs_enabled(True)
    try:
        yield
    finally:
        set_obs_enabled(previous)


# -- units ---------------------------------------------------------------------


class TestSpan:
    def test_end_is_idempotent(self, obs_on):
        span = Span(new_trace_id(), "stage")
        span.end(outcome="first")
        duration = span.duration_seconds
        span.end(outcome="second")
        assert span.duration_seconds == duration
        assert span.attrs["outcome"] == "first"

    def test_backdated_start(self, obs_on):
        backdated = time.monotonic() - 5.0
        span = Span(new_trace_id(), "queue-wait", start_monotonic=backdated)
        assert span.start_unix == pytest.approx(time.time() - 5.0, abs=0.5)
        span.end()
        assert span.duration_seconds >= 5.0

    def test_as_dict_omits_empty_fields(self, obs_on):
        span = Span("t" * 8, "stage")
        out = span.as_dict()
        assert "parent_id" not in out
        assert "claim_id" not in out
        assert "duration_seconds" not in out
        span.event("blip", detail=1)
        span.end(outcome="ok")
        out = span.as_dict()
        assert out["attrs"] == {"outcome": "ok"}
        assert out["events"][0]["name"] == "blip"
        assert out["events"][0]["at"] >= 0

    def test_sanitize_trace_id(self):
        good = new_trace_id()
        assert sanitize_trace_id(good) == good
        assert sanitize_trace_id("  abc-DEF_123  ") == "abc-DEF_123"
        assert sanitize_trace_id("has space") == ""
        assert sanitize_trace_id("x" * 65) == ""
        assert sanitize_trace_id("") == ""
        assert sanitize_trace_id(None) == ""
        assert sanitize_trace_id(12345) == ""


class TestTracer:
    def test_null_span_without_trace_id(self, obs_on):
        assert Tracer().span("", "stage") is NULL_SPAN

    def test_null_span_when_disabled(self):
        previous = set_obs_enabled(False)
        try:
            assert Tracer().span(new_trace_id(), "stage") is NULL_SPAN
        finally:
            set_obs_enabled(previous)

    def test_null_span_is_falsy_and_inert(self):
        assert not NULL_SPAN
        NULL_SPAN.event("ignored")
        assert NULL_SPAN.end() is NULL_SPAN
        assert NULL_SPAN.as_dict() == {}
        Tracer().finish(NULL_SPAN)  # must not raise

    def test_auto_parenting_via_active_stack(self, obs_on):
        tracer = Tracer()
        trace_id = new_trace_id()
        outer = tracer.span(trace_id, "outer")
        with tracer.active(outer):
            assert current_span() is outer
            inner = tracer.span(trace_id, "inner")
            assert inner.parent_id == outer.span_id
            # A span of a DIFFERENT trace must not adopt this parent.
            foreign = tracer.span(new_trace_id(), "foreign")
            assert foreign.parent_id == ""
        assert current_span() is NULL_SPAN

    def test_finish_persists_via_sink_and_records_stage(self, obs_on):
        reinit_metrics_after_fork()
        stored = []
        tracer = Tracer(sink=lambda claim_id, span: stored.append(
            (claim_id, span)
        ))
        span = tracer.span(new_trace_id(), "prove", claim_id="c1")
        tracer.finish(span, outcome="ok")
        assert stored[0][0] == "c1"
        assert stored[0][1]["attrs"]["outcome"] == "ok"
        hist = get_metrics().histogram("zkrownn_stage_seconds")
        assert hist.snapshot(stage="prove")["count"] == 1

    def test_sink_failure_is_swallowed(self, obs_on):
        def broken(claim_id, span):
            raise OSError("disk gone")

        tracer = Tracer(sink=broken)
        tracer.finish(tracer.span(new_trace_id(), "persist", claim_id="c"))

    def test_spanless_claims_skip_the_sink(self, obs_on):
        stored = []
        tracer = Tracer(sink=lambda *a: stored.append(a))
        tracer.finish(tracer.span(new_trace_id(), "anonymous"))
        assert stored == []  # no claim_id -> nothing persisted

    def test_record_fault_attaches_to_active_span(self, obs_on):
        reinit_metrics_after_fork()
        tracer = Tracer()
        span = tracer.span(new_trace_id(), "dispatch")
        with tracer.active(span):
            record_fault("scheduler.prove", "crash")
        assert span.events[0]["name"] == "fault-injected"
        assert span.events[0]["site"] == "scheduler.prove"
        counter = get_metrics().counter("zkrownn_faults_injected_total")
        assert counter.value(site="scheduler.prove", kind="crash") == 1


class TestRegistryTraceStore:
    def test_spans_round_trip_sorted_and_torn_lines_skipped(self, tmp_path):
        registry = ClaimRegistry(tmp_path / "reg")
        claim_id = "a" * 64
        registry.store_trace_span(claim_id, {"name": "late", "start_unix": 2.0})
        registry.store_trace_span(claim_id, {"name": "early", "start_unix": 1.0})
        # A torn append (crash mid-write) must not poison the trace.
        with open(registry.root / "traces" / f"{claim_id}.jsonl", "a") as fh:
            fh.write('{"name": "torn", "start_un')
        spans = registry.trace_spans(claim_id)
        assert [s["name"] for s in spans] == ["early", "late"]
        assert registry.trace_spans("b" * 64) == []


# -- end-to-end lifecycle ------------------------------------------------------

LIFECYCLE_STAGES = (
    "submit", "queue-wait", "lease-acquire", "synthesize", "prove", "persist",
)


@pytest.fixture(scope="module")
def traced_claim(tmp_path_factory, watermarked_mlp):
    """One claim proved over real HTTP, with its trace fully recorded."""
    model, keys, _ = watermarked_mlp
    config = CircuitConfig(
        theta=0.0, fixed_point=FixedPointFormat(frac_bits=14, total_bits=40)
    )
    root = tmp_path_factory.mktemp("obs-e2e") / "registry"
    server = ProofServer(ProofService(ClaimRegistry(root))).start()
    client = ServiceClient(server.url)
    submitted = client.submit_claim(model, keys, config, seed=5, setup_seed=99)
    claim_id = submitted["claim_id"]
    status = client.wait(claim_id, timeout=600)
    assert status["state"] == "done", status
    assert client.verify_remote(claim_id)["accepted"]
    yield client, claim_id, status, server
    server.stop()


class TestTraceEndToEnd:
    def test_record_carries_the_client_minted_trace_id(self, traced_claim):
        client, claim_id, status, _ = traced_claim
        assert status["trace_id"] == client.trace_id(claim_id)

    def test_every_lifecycle_stage_exactly_once(self, traced_claim):
        client, claim_id, _, _ = traced_claim
        trace = client.trace(claim_id)
        assert trace["trace_id"] == client.trace_id(claim_id)
        names = [span["name"] for span in trace["spans"]]
        for stage in LIFECYCLE_STAGES:
            assert names.count(stage) == 1, (
                f"expected stage {stage!r} exactly once, got {names}"
            )
        # The server-side verification above left its span too.
        assert names.count("verify") == 1

    def test_spans_share_one_trace_and_order_sanely(self, traced_claim):
        client, claim_id, _, _ = traced_claim
        trace = client.trace(claim_id)
        spans = {s["name"]: s for s in trace["spans"]}
        assert all(
            s["trace_id"] == trace["trace_id"] for s in trace["spans"]
        )
        # queue-wait is backdated to submission; prove starts after it.
        assert spans["queue-wait"]["start_unix"] <= spans["prove"]["start_unix"]
        assert spans["submit"]["start_unix"] <= spans["persist"]["start_unix"]
        for stage in LIFECYCLE_STAGES:
            assert spans[stage]["duration_seconds"] >= 0
            assert spans[stage]["claim_id"] == claim_id
        # Scheduler stages parent under the submit span.
        submit_id = spans["submit"]["span_id"]
        assert spans["queue-wait"]["parent_id"] == submit_id
        assert spans["lease-acquire"]["parent_id"] == submit_id

    def test_stage_metrics_mirror_the_trace(self, traced_claim):
        client, _, _, _ = traced_claim
        text = client.metrics_text()
        for stage in ("queue-wait", "prove", "persist"):
            assert f'zkrownn_stage_seconds_count{{stage="{stage}"}}' in text
        assert 'zkrownn_engine_stage_seconds_count{stage="prove_stream"}' in text

    def test_trace_of_unknown_claim_is_404(self, traced_claim):
        client, _, _, _ = traced_claim
        with pytest.raises(ServiceError) as excinfo:
            client.trace("f" * 64)
        assert excinfo.value.status == 404

    def test_cli_timeline_renders(self, traced_claim, capsys):
        from repro.cli import main

        client, claim_id, _, server = traced_claim
        assert main(["trace", "--url", server.url, claim_id]) == 0
        out = capsys.readouterr().out
        assert claim_id in out
        assert "prove" in out
        assert "queue-wait" in out


# -- chaos: failover keeps the trace -------------------------------------------


class TestTraceSurvivesFailover:
    # Replica A's worker thread dying on the injected crash IS the
    # scenario: the unhandled-thread-exception warning is by design.
    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_trace_id_intact_across_replica_death(
        self, tmp_path, watermarked_mlp
    ):
        """Replica A crashes at dispatch; the client's rescue resubmission
        gets the claim proved by replica B -- and every span, on either
        replica, lands on the one client-minted trace."""
        model, keys, _ = watermarked_mlp
        config = CircuitConfig(
            theta=0.0,
            fixed_point=FixedPointFormat(frac_bits=14, total_bits=40),
        )
        root = tmp_path / "registry"

        plan_a = FaultPlan(seed=0, specs=[
            FaultSpec(site="scheduler.dispatch", kind="crash", max_fires=1),
        ])
        registry_a = ClaimRegistry(root, owner_token="replica-a")
        engine_a = ProvingEngine(cache_dir=str(root / "engine-cache"))
        service_a = ProofService(
            registry_a,
            engine=engine_a,
            scheduler=ProofScheduler(
                engine_a, registry_a, lease_seconds=0.5,
                heartbeat_seconds=0, faults=plan_a,
            ),
        )
        server_a = ProofServer(service_a).start()

        registry_b = ClaimRegistry(root, owner_token="replica-b")
        service_b = ProofService(
            registry_b,
            engine=ProvingEngine(cache_dir=str(root / "engine-cache")),
        )
        server_b = ProofServer(service_b).start()

        try:
            client = ServiceClient(
                [server_a.url, server_b.url],
                breaker_threshold=1,
                breaker_reset_seconds=30.0,
                rescue_after=0.75,
            )
            submitted = client.submit_claim(
                model, keys, config, seed=5, setup_seed=99
            )
            claim_id = submitted["claim_id"]
            minted = client.trace_id(claim_id)
            assert minted

            deadline = time.monotonic() + 30
            while plan_a.fired("scheduler.dispatch") == 0:
                assert time.monotonic() < deadline, "replica A never dispatched"
                time.sleep(0.02)
            server_a._httpd.shutdown()
            server_a._httpd.server_close()

            status = client.wait(claim_id, timeout=600, poll_seconds=0.1)
            assert status["state"] == "done", status

            # First writer wins: the record keeps the original trace id
            # through the crash, the failover, and the rescue.
            assert status["trace_id"] == minted

            trace = client.trace(claim_id)
            assert trace["trace_id"] == minted
            names = [span["name"] for span in trace["spans"]]
            assert all(
                span["trace_id"] == minted for span in trace["spans"]
            ), names
            # The claim proved on B after the client's rescue/resubmit.
            assert "prove" in names
            assert "persist" in names
            assert any(n in names for n in ("rescued", "resubmit")), names
            # A's dispatch span carries the injected crash as an event.
            fault_events = [
                event
                for span in trace["spans"]
                for event in span.get("events", [])
                if event.get("name") == "fault-injected"
            ]
            assert any(
                e.get("site") == "scheduler.dispatch" for e in fault_events
            ), trace["spans"]
        finally:
            server_b.stop()
            try:
                service_a.close()
            except Exception:  # noqa: BLE001 - replica A is "dead" anyway
                pass
