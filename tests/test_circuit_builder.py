"""Tests for the circuit-builder DSL (wires, bits, comparisons, hints)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuit.builder import CircuitBuilder
from repro.field.prime import BN254_R as R
from repro.snark.errors import ConstraintViolation

signed_small = st.integers(min_value=-(2**20), max_value=2**20)


def fresh():
    return CircuitBuilder("test")


class TestInputsAndConstants:
    def test_constant_has_no_constraints(self):
        b = fresh()
        b.constant(5)
        assert b.cs.num_constraints == 0

    def test_public_then_private_layout(self):
        b = fresh()
        p = b.public_input("p", 1)
        w = b.private_input("w", 2)
        assert b.cs.num_public == 1
        assert b.assignment[1] == 1
        assert b.assignment[2] == 2

    def test_public_after_private_rejected(self):
        b = fresh()
        b.private_input("w", 0)
        with pytest.raises(ValueError):
            b.public_input("p", 0)

    def test_vector_inputs(self):
        b = fresh()
        ws = b.private_inputs("v", [1, 2, 3])
        assert [w.value for w in ws] == [1, 2, 3]

    def test_one_zero(self):
        b = fresh()
        assert b.one().value == 1
        assert b.zero().value == 0


class TestLinearOps:
    def test_add_free(self):
        b = fresh()
        x = b.private_input("x", 3)
        y = b.private_input("y", 4)
        z = x + y
        assert z.value == 7
        assert b.cs.num_constraints == 0

    def test_sub_and_neg(self):
        b = fresh()
        x = b.private_input("x", 10)
        assert (x - 4).value == 6
        assert (-x).value == R - 10

    def test_scale_free(self):
        b = fresh()
        x = b.private_input("x", 3)
        assert x.scale(5).value == 15
        assert b.cs.num_constraints == 0

    def test_int_mul_is_free(self):
        b = fresh()
        x = b.private_input("x", 3)
        _ = x * 7
        _ = 7 * x
        assert b.cs.num_constraints == 0

    def test_radd_rsub(self):
        b = fresh()
        x = b.private_input("x", 3)
        assert (10 + x).value == 13
        assert (10 - x).value == 7

    def test_cross_builder_rejected(self):
        b1, b2 = fresh(), fresh()
        x = b1.private_input("x", 1)
        y = b2.private_input("y", 1)
        with pytest.raises(ValueError):
            _ = x + y


class TestMultiplication:
    def test_wire_mul_costs_one_constraint(self):
        b = fresh()
        x = b.private_input("x", 3)
        y = b.private_input("y", 4)
        z = x * y
        assert z.value == 12
        assert b.cs.num_constraints == 1
        b.check()

    def test_mul_by_constant_wire_is_free(self):
        b = fresh()
        x = b.private_input("x", 3)
        c = b.constant(5)
        z = b.mul(x, c)
        assert z.value == 15
        assert b.cs.num_constraints == 0

    def test_square(self):
        b = fresh()
        x = b.private_input("x", 9)
        assert x.square().value == 81
        b.check()

    @given(a=signed_small, b_val=signed_small)
    def test_mul_matches_field(self, a, b_val):
        b = fresh()
        x = b.private_input("x", a)
        y = b.private_input("y", b_val)
        assert (x * y).value == (a * b_val) % R


class TestAssertions:
    def test_assert_equal_ok(self):
        b = fresh()
        x = b.private_input("x", 6)
        b.assert_equal(x, b.constant(6))
        b.check()

    def test_assert_equal_fails_at_synthesis(self):
        b = fresh()
        x = b.private_input("x", 6)
        with pytest.raises(ConstraintViolation):
            b.assert_equal(x, b.constant(7))

    def test_enforce_checks_witness(self):
        b = fresh()
        x = b.private_input("x", 2)
        with pytest.raises(ConstraintViolation):
            b.enforce(x, x, b.constant(5))

    def test_assert_zero(self):
        b = fresh()
        x = b.private_input("x", 0)
        b.assert_zero(x)
        b.check()


class TestBooleans:
    def test_assert_boolean_accepts_bits(self):
        b = fresh()
        for v in (0, 1):
            b.assert_boolean(b.private_input(f"b{v}", v))
        b.check()

    def test_assert_boolean_rejects_two(self):
        b = fresh()
        x = b.private_input("x", 2)
        with pytest.raises(ConstraintViolation):
            b.assert_boolean(x)

    @pytest.mark.parametrize(
        "op,table",
        [
            ("and_", [0, 0, 0, 1]),
            ("or_", [0, 1, 1, 1]),
            ("xor_", [0, 1, 1, 0]),
        ],
    )
    def test_truth_tables(self, op, table):
        for idx, (x_val, y_val) in enumerate([(0, 0), (0, 1), (1, 0), (1, 1)]):
            b = fresh()
            x = b.allocate_bit("x", x_val)
            y = b.allocate_bit("y", y_val)
            out = getattr(b, op)(x, y)
            assert out.value == table[idx]
            b.check()

    def test_not(self):
        b = fresh()
        x = b.allocate_bit("x", 1)
        assert b.not_(x).value == 0

    def test_select(self):
        b = fresh()
        cond = b.allocate_bit("c", 1)
        t = b.private_input("t", 10)
        f = b.private_input("f", 20)
        assert b.select(cond, t, f).value == 10
        b.check()


class TestBitDecomposition:
    def test_round_trip(self):
        b = fresh()
        x = b.private_input("x", 0b1011)
        bits = b.to_bits(x, 4)
        assert [bit.value for bit in bits] == [1, 1, 0, 1]
        assert b.from_bits(bits).value == 0b1011
        b.check()

    def test_constraint_count(self):
        b = fresh()
        x = b.private_input("x", 5)
        b.to_bits(x, 8)
        assert b.cs.num_constraints == 9  # 8 booleans + 1 recomposition

    def test_overflow_rejected(self):
        b = fresh()
        x = b.private_input("x", 16)
        with pytest.raises(ConstraintViolation):
            b.to_bits(x, 4)

    def test_range_check(self):
        b = fresh()
        x = b.private_input("x", 255)
        b.assert_range(x, 8)
        b.check()


class TestComparisons:
    @pytest.mark.parametrize("value,expected", [(5, 1), (0, 1), (-5, 0)])
    def test_is_nonnegative(self, value, expected):
        b = fresh()
        x = b.private_input("x", value)
        assert b.is_nonnegative(x, 16).value == expected
        b.check()

    def test_is_nonnegative_overflow_rejected(self):
        b = fresh()
        x = b.private_input("x", 1 << 20)
        with pytest.raises(ConstraintViolation):
            b.is_nonnegative(x, 16)

    @pytest.mark.parametrize(
        "a,c,expected", [(5, 3, 1), (3, 3, 1), (2, 3, 0), (-4, -5, 1), (-5, -4, 0)]
    )
    def test_greater_equal(self, a, c, expected):
        b = fresh()
        x = b.private_input("x", a)
        y = b.private_input("y", c)
        assert b.greater_equal(x, y, 16).value == expected
        b.check()

    def test_less_than(self):
        b = fresh()
        x = b.private_input("x", 2)
        y = b.private_input("y", 3)
        assert b.less_than(x, y, 16).value == 1
        b.check()

    @pytest.mark.parametrize("value,expected", [(0, 1), (1, 0), (-7, 0)])
    def test_is_zero(self, value, expected):
        b = fresh()
        x = b.private_input("x", value)
        assert b.is_zero(x).value == expected
        b.check()


class TestTruncation:
    @pytest.mark.parametrize("value,shift,expected", [
        (256, 4, 16),
        (255, 4, 15),
        (-256, 4, -16),
        (-255, 4, -16),  # floor semantics for negatives
        (0, 4, 0),
    ])
    def test_truncate_floor_semantics(self, value, shift, expected):
        b = fresh()
        x = b.private_input("x", value)
        q = b.truncate(x, shift, 24)
        assert q.signed_value() == expected
        b.check()

    @given(value=signed_small, shift=st.integers(min_value=1, max_value=8))
    def test_truncate_matches_python_shift(self, value, shift):
        b = fresh()
        x = b.private_input("x", value)
        q = b.truncate(x, shift, 32)
        assert q.signed_value() == value >> shift
        b.check()

    @pytest.mark.parametrize("value,divisor,expected", [
        (10, 5, 2), (11, 5, 2), (-11, 5, -3), (7, 1, 7), (12, 4, 3),
    ])
    def test_div_floor_const(self, value, divisor, expected):
        b = fresh()
        x = b.private_input("x", value)
        q = b.div_floor_const(x, divisor, 24)
        assert q.signed_value() == expected
        b.check()

    def test_div_by_nonpositive_rejected(self):
        b = fresh()
        x = b.private_input("x", 5)
        with pytest.raises(ValueError):
            b.div_floor_const(x, 0, 24)


class TestOutputs:
    def test_bind_output(self):
        b = fresh()
        out = b.public_output("result")
        x = b.private_input("x", 4)
        y = x * x
        b.bind_output(out, y)
        assert b.assignment[out.index] == 16
        assert b.public_values() == [16]
        b.check()

    def test_double_bind_rejected(self):
        b = fresh()
        out = b.public_output("result")
        x = b.private_input("x", 4)
        b.bind_output(out, x)
        with pytest.raises(ValueError):
            b.bind_output(out, x)

    def test_output_wire(self):
        b = fresh()
        out = b.public_output("result")
        x = b.private_input("x", 3)
        b.bind_output(out, x)
        assert b.output_wire(out).value == 3


class TestStructureDigest:
    def _build(self, x_val, y_val):
        b = fresh()
        x = b.private_input("x", x_val)
        y = b.private_input("y", y_val)
        z = x * y
        b.is_nonnegative(z, 16)
        return b

    def test_same_structure_same_digest(self):
        assert self._build(2, 3).structure_digest() == self._build(5, 7).structure_digest()

    def test_different_structure_different_digest(self):
        b1 = self._build(2, 3)
        b2 = fresh()
        x = b2.private_input("x", 2)
        _ = x * x
        assert b1.structure_digest() != b2.structure_digest()

    def test_repr(self):
        assert "CircuitBuilder" in repr(fresh())
