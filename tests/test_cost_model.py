"""Validation of the analytic constraint cost model against real circuits.

Every formula in :class:`repro.bench.cost_model.GadgetCosts` is checked by
building the corresponding gadget and comparing exact constraint counts.
This is what justifies quoting cost-model numbers at the paper's scale.
"""

import numpy as np
import pytest

from repro.bench.cost_model import GadgetCosts
from repro.circuit.builder import CircuitBuilder
from repro.circuit.fixedpoint import FixedPointFormat
from repro.gadgets.activation import zk_relu_vector, zk_sigmoid_vector
from repro.gadgets.ber import zk_ber
from repro.gadgets.conv import wire_tensor3, wire_tensor4, zk_conv3d
from repro.gadgets.linalg import wire_matrix, wire_vector, zk_average_rows, zk_dense, zk_matmul
from repro.gadgets.pooling import zk_maxpool2d
from repro.gadgets.threshold import zk_hard_threshold_vector

FMT = FixedPointFormat(frac_bits=12, total_bits=36)
COSTS = GadgetCosts(FMT)
RNG = np.random.default_rng(0)


def builder():
    return CircuitBuilder("cost")


class TestPrimitiveCosts:
    @pytest.mark.parametrize("bits", [4, 8, 17])
    def test_to_bits(self, bits):
        b = builder()
        x = b.private_input("x", 3)
        b.to_bits(x, bits)
        assert b.cs.num_constraints == COSTS.to_bits(bits)

    @pytest.mark.parametrize("bits", [8, 16])
    def test_is_nonnegative(self, bits):
        b = builder()
        x = b.private_input("x", 3)
        b.is_nonnegative(x, bits)
        assert b.cs.num_constraints == COSTS.is_nonnegative(bits)

    @pytest.mark.parametrize("bits", [8, 16])
    def test_greater_equal(self, bits):
        b = builder()
        x = b.private_input("x", 5)
        y = b.private_input("y", 2)
        b.greater_equal(x, y, bits)
        assert b.cs.num_constraints == COSTS.greater_equal(bits)

    @pytest.mark.parametrize("shift,range_bits", [(4, 16), (12, 36)])
    def test_truncate(self, shift, range_bits):
        b = builder()
        x = b.private_input("x", 1000)
        b.truncate(x, shift, range_bits)
        assert b.cs.num_constraints == COSTS.truncate(shift, range_bits)

    @pytest.mark.parametrize("divisor", [2, 3, 4, 5, 7, 8])
    def test_div_floor_const(self, divisor):
        b = builder()
        x = b.private_input("x", 1000)
        b.div_floor_const(x, divisor, FMT.total_bits)
        assert b.cs.num_constraints == COSTS.div_floor_const(divisor)

    def test_fp_mul(self):
        b = builder()
        x = b.private_input("x", FMT.encode(1.5))
        y = b.private_input("y", FMT.encode(2.0))
        FMT.mul(b, x, y)
        assert b.cs.num_constraints == COSTS.fp_mul()

    @pytest.mark.parametrize("n", [1, 4, 9])
    def test_inner_product(self, n):
        b = builder()
        xs = [b.private_input(f"x{i}", FMT.encode(0.5)) for i in range(n)]
        ys = [b.private_input(f"y{i}", FMT.encode(0.5)) for i in range(n)]
        FMT.inner_product(b, xs, ys)
        assert b.cs.num_constraints == COSTS.inner_product(n)


class TestGadgetCosts:
    @pytest.mark.parametrize("m,n,l", [(2, 3, 4), (4, 4, 4)])
    def test_matmul(self, m, n, l):
        b = builder()
        wa = wire_matrix(b, "A", RNG.uniform(-1, 1, (m, n)), FMT)
        wb = wire_matrix(b, "B", RNG.uniform(-1, 1, (n, l)), FMT)
        zk_matmul(b, FMT, wa, wb)
        assert b.cs.num_constraints == COSTS.matmul(m, n, l)

    def test_dense(self):
        b = builder()
        w = wire_matrix(b, "W", RNG.uniform(-1, 1, (3, 5)), FMT)
        x = wire_vector(b, "x", RNG.uniform(-1, 1, 5), FMT)
        bias = wire_vector(b, "b", RNG.uniform(-1, 1, 3), FMT)
        zk_dense(b, FMT, x, w, bias)
        assert b.cs.num_constraints == COSTS.dense(3, 5)

    @pytest.mark.parametrize("n", [1, 5])
    def test_relu_vector(self, n):
        b = builder()
        xs = [b.private_input(f"x{i}", FMT.encode(-0.5)) for i in range(n)]
        zk_relu_vector(b, FMT, xs)
        assert b.cs.num_constraints == COSTS.relu_vector(n)

    @pytest.mark.parametrize("n", [1, 4])
    def test_hard_threshold_vector(self, n):
        b = builder()
        xs = [b.private_input(f"x{i}", FMT.encode(0.7)) for i in range(n)]
        zk_hard_threshold_vector(b, FMT, xs)
        assert b.cs.num_constraints == COSTS.hard_threshold_vector(n)

    @pytest.mark.parametrize("degree", [3, 5, 9])
    def test_sigmoid(self, degree):
        b = builder()
        x = b.private_input("x", FMT.encode(0.5))
        zk_sigmoid_vector(b, FMT, [x], degree=degree)
        assert b.cs.num_constraints == COSTS.sigmoid(degree)

    @pytest.mark.parametrize("rows,width", [(2, 3), (5, 4), (4, 2)])
    def test_average_rows(self, rows, width):
        b = builder()
        wm = wire_matrix(b, "M", RNG.uniform(-1, 1, (rows, width)), FMT)
        zk_average_rows(b, FMT, wm)
        assert b.cs.num_constraints == COSTS.average_rows(rows, width)

    @pytest.mark.parametrize("n", [4, 8, 33])
    def test_ber(self, n):
        b = builder()
        wm = [b.allocate_bit(f"w{i}", 0) for i in range(n)]
        ext = [b.allocate_bit(f"e{i}", 0) for i in range(n)]
        before = b.cs.num_constraints
        zk_ber(b, wm, ext, theta=0.5)
        assert b.cs.num_constraints - before == COSTS.ber(n)

    @pytest.mark.parametrize("stride", [1, 2])
    def test_conv3d(self, stride):
        b = builder()
        x = wire_tensor3(b, "x", RNG.uniform(-1, 1, (2, 5, 5)), FMT)
        k = wire_tensor4(b, "k", RNG.uniform(-1, 1, (3, 2, 3, 3)), FMT)
        bias = wire_vector(b, "b", RNG.uniform(-1, 1, 3), FMT)
        zk_conv3d(b, FMT, x, k, bias, stride=stride)
        assert b.cs.num_constraints == COSTS.conv3d(2, 5, 5, 3, 3, stride)

    @pytest.mark.parametrize("pool,stride", [(2, 1), (2, 2)])
    def test_maxpool(self, pool, stride):
        b = builder()
        x = wire_tensor3(b, "x", RNG.uniform(-1, 1, (2, 4, 4)), FMT)
        zk_maxpool2d(b, FMT, x, pool, stride)
        assert b.cs.num_constraints == COSTS.maxpool2d(2, 4, 4, pool, stride)


class TestEndToEndCosts:
    def test_mlp_extraction_cost(self):
        """The full Algorithm-1 MLP circuit matches the closed form."""
        from repro.bench.table1 import SCALES, build_mlp_extraction

        scale = SCALES["tiny"]
        builder = build_mlp_extraction(scale, FMT)
        expected = GadgetCosts(FMT).mlp_extraction(
            scale.mlp_input, scale.mlp_hidden, scale.mlp_triggers, scale.wm_bits
        )
        assert builder.cs.num_constraints == expected

    def test_cnn_extraction_cost(self):
        from repro.bench.table1 import SCALES, build_cnn_extraction

        scale = SCALES["tiny"]
        builder = build_cnn_extraction(scale, FMT)
        expected = GadgetCosts(FMT).cnn_extraction(
            3, scale.cnn_image, scale.cnn_channels, 3, 2,
            scale.cnn_triggers, scale.wm_bits,
        )
        assert builder.cs.num_constraints == expected

    def test_paper_scale_counts_are_stable(self):
        """Regression pin: the published numbers in EXPERIMENTS.md."""
        from repro.bench.table1 import BENCH_FORMAT, paper_scale_constraints

        counts = paper_scale_constraints(BENCH_FORMAT)
        assert counts["MatMult"] == 3_194_880
        assert counts["MNIST-MLP"] == 2_369_450
