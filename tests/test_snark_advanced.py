"""Tests for the advanced SNARK features: the zero-knowledge simulator,
batch verification, the fast final exponentiation, and R1CS serialization.
"""

import random

import pytest

from repro.curves.pairing import final_exponentiation, final_exponentiation_naive
from repro.field.prime import BN254_P as P
from repro.field.prime import BN254_R as R
from repro.field.tower import Fp2Element, Fp6Element, Fp12Element
from repro.snark import (
    ConstraintSystem,
    LinearCombination as LC,
    deserialize_r1cs,
    load_r1cs,
    prove,
    save_r1cs,
    serialize_r1cs,
    setup,
    setup_with_trapdoor,
    simulate_proof,
    verify,
    verify_batch,
)
from repro.snark.serialize import R1csFormatError


def square_circuit():
    cs = ConstraintSystem()
    y = cs.allocate_public("y")
    x = cs.allocate_private("x")
    cs.enforce(LC.variable(x), LC.variable(x), LC.variable(y))
    return cs


@pytest.fixture(scope="module")
def square_keypair_with_trapdoor():
    cs = square_circuit()
    keypair, trapdoor = setup_with_trapdoor(cs, seed=11)
    return cs, keypair, trapdoor


class TestZeroKnowledgeSimulator:
    def test_simulated_proof_verifies_without_witness(
        self, square_keypair_with_trapdoor
    ):
        """The formal ZK property: the trapdoor forges verifying proofs
        with NO witness, so honest proofs cannot leak the witness."""
        cs, keypair, trapdoor = square_keypair_with_trapdoor
        forged = simulate_proof(trapdoor, cs, [49], seed=1)
        assert verify(keypair.verifying_key, [49], forged)

    def test_simulator_works_for_any_instance(self, square_keypair_with_trapdoor):
        """With the trapdoor even *false* statements prove -- exactly why
        the ceremony must destroy it."""
        cs, keypair, trapdoor = square_keypair_with_trapdoor
        # 3 is not a quadratic residue... but the simulator doesn't care.
        forged = simulate_proof(trapdoor, cs, [3], seed=2)
        assert verify(keypair.verifying_key, [3], forged)

    def test_simulated_and_honest_proofs_both_verify(
        self, square_keypair_with_trapdoor
    ):
        cs, keypair, trapdoor = square_keypair_with_trapdoor
        honest = prove(keypair.proving_key, cs, [1, 49, 7], seed=3)
        forged = simulate_proof(trapdoor, cs, [49], seed=4)
        assert verify(keypair.verifying_key, [49], honest)
        assert verify(keypair.verifying_key, [49], forged)
        assert honest.to_bytes() != forged.to_bytes()

    def test_simulator_rejects_wrong_instance_size(
        self, square_keypair_with_trapdoor
    ):
        cs, _, trapdoor = square_keypair_with_trapdoor
        with pytest.raises(ValueError):
            simulate_proof(trapdoor, cs, [1, 2], seed=5)

    def test_simulated_proof_bound_to_its_instance(
        self, square_keypair_with_trapdoor
    ):
        cs, keypair, trapdoor = square_keypair_with_trapdoor
        forged = simulate_proof(trapdoor, cs, [49], seed=6)
        assert not verify(keypair.verifying_key, [50], forged)


class TestBatchVerification:
    @pytest.fixture(scope="class")
    def batch_parts(self):
        cs = square_circuit()
        keypair = setup(cs, seed=21)
        batch = []
        for v in (2, 3, 5, 8):
            proof = prove(keypair.proving_key, cs, [1, v * v, v], seed=v)
            batch.append(([v * v], proof))
        return cs, keypair, batch

    def test_valid_batch_accepted(self, batch_parts):
        _, keypair, batch = batch_parts
        assert verify_batch(keypair.verifying_key, batch, seed=1)

    def test_single_bad_instance_rejects_batch(self, batch_parts):
        _, keypair, batch = batch_parts
        tampered = list(batch)
        tampered[2] = ([26], tampered[2][1])
        assert not verify_batch(keypair.verifying_key, tampered, seed=1)

    def test_single_tampered_proof_rejects_batch(self, batch_parts):
        from repro.curves.g1 import G1Point
        from repro.snark import Proof

        _, keypair, batch = batch_parts
        good = batch[0][1]
        bad = Proof(good.a + G1Point.generator(), good.b, good.c)
        tampered = [batch[0], ([4], bad)]
        assert not verify_batch(keypair.verifying_key, tampered, seed=1)

    def test_empty_batch_is_true(self, batch_parts):
        _, keypair, _ = batch_parts
        assert verify_batch(keypair.verifying_key, [])

    def test_singleton_batch_matches_plain_verify(self, batch_parts):
        _, keypair, batch = batch_parts
        publics, proof = batch[0]
        assert verify_batch(keypair.verifying_key, [(publics, proof)], seed=2)
        assert verify(keypair.verifying_key, publics, proof)

    def test_wrong_instance_length_rejected(self, batch_parts):
        _, keypair, batch = batch_parts
        assert not verify_batch(keypair.verifying_key, [([1, 2], batch[0][1])])


class TestPreparedVerification:
    @pytest.fixture(scope="class")
    def prepared_parts(self):
        from repro.snark import prepare_verifying_key

        cs = square_circuit()
        keypair = setup(cs, seed=31)
        proof = prove(keypair.proving_key, cs, [1, 49, 7], seed=32)
        pvk = prepare_verifying_key(keypair.verifying_key)
        return keypair, pvk, proof

    def test_agrees_with_plain_verify_on_valid(self, prepared_parts):
        from repro.snark import verify_prepared

        keypair, pvk, proof = prepared_parts
        assert verify_prepared(pvk, [49], proof)
        assert verify(keypair.verifying_key, [49], proof)

    def test_agrees_with_plain_verify_on_invalid(self, prepared_parts):
        from repro.snark import verify_prepared

        keypair, pvk, proof = prepared_parts
        assert not verify_prepared(pvk, [50], proof)
        assert not verify(keypair.verifying_key, [50], proof)

    def test_wrong_instance_size(self, prepared_parts):
        from repro.snark import verify_prepared

        _, pvk, proof = prepared_parts
        assert not verify_prepared(pvk, [49, 1], proof)

    def test_precompute_infinity_rejected(self):
        from repro.curves.g2 import G2Point
        from repro.curves.pairing import precompute_g2

        with pytest.raises(ValueError):
            precompute_g2(G2Point.infinity())

    def test_precomputed_miller_matches_live(self, rng):
        from repro.curves.bn254 import OPTIMAL_ATE_LOOP_COUNT
        from repro.curves.g1 import G1Point
        from repro.curves.g2 import G2Point
        from repro.curves.pairing import (
            miller_loop,
            miller_loop_precomputed,
            precompute_g2,
        )

        p = G1Point.generator() * rng.randrange(1, 1000)
        q = G2Point.generator() * rng.randrange(1, 1000)
        live = miller_loop(p, q, OPTIMAL_ATE_LOOP_COUNT, optimal_corrections=True)
        pre = precompute_g2(q)
        assert miller_loop_precomputed(p, pre) == live

    def test_precomputed_plain_ate_variant(self, rng):
        from repro.curves.bn254 import ATE_LOOP_COUNT
        from repro.curves.g1 import G1Point
        from repro.curves.g2 import G2Point
        from repro.curves.pairing import (
            miller_loop,
            miller_loop_precomputed,
            precompute_g2,
        )

        p = G1Point.generator() * 5
        q = G2Point.generator() * 9
        live = miller_loop(p, q, ATE_LOOP_COUNT)
        pre = precompute_g2(q, variant="ate")
        assert miller_loop_precomputed(p, pre) == live

    def test_infinity_g1_gives_one(self, prepared_parts):
        from repro.curves.g1 import G1Point
        from repro.curves.pairing import miller_loop_precomputed, precompute_g2
        from repro.curves.g2 import G2Point

        pre = precompute_g2(G2Point.generator())
        assert miller_loop_precomputed(G1Point.infinity(), pre).is_one()


class TestFinalExponentiationVariants:
    def _random_fp12(self, rng):
        def fp2():
            return Fp2Element(rng.randrange(P), rng.randrange(P))

        def fp6():
            return Fp6Element(fp2(), fp2(), fp2())

        return Fp12Element(fp6(), fp6())

    def test_fast_matches_naive_on_random_elements(self, rng):
        for _ in range(5):
            f = self._random_fp12(rng)
            assert final_exponentiation(f) == final_exponentiation_naive(f)

    def test_fast_output_in_cyclotomic_subgroup(self, rng):
        f = final_exponentiation(self._random_fp12(rng))
        assert f.conjugate() == f.inverse()
        assert f.pow(R).is_one()


class TestR1csSerialization:
    def test_round_trip_structure(self):
        cs = square_circuit()
        restored = deserialize_r1cs(serialize_r1cs(cs))
        assert restored.num_variables == cs.num_variables
        assert restored.num_public == cs.num_public
        assert restored.num_constraints == cs.num_constraints
        for (a1, b1, c1), (a2, b2, c2) in zip(cs.constraints, restored.constraints):
            assert a1.terms == a2.terms
            assert b1.terms == b2.terms
            assert c1.terms == c2.terms

    def test_round_trip_preserves_satisfiability(self):
        cs = square_circuit()
        restored = deserialize_r1cs(serialize_r1cs(cs))
        assert restored.is_satisfied([1, 49, 7])
        assert not restored.is_satisfied([1, 50, 7])

    def test_round_trip_through_groth16(self):
        """Keys generated from a deserialized circuit verify proofs made
        with the original (structure is all Groth16 sees)."""
        cs = square_circuit()
        restored = deserialize_r1cs(serialize_r1cs(cs))
        keypair = setup(restored, seed=5)
        proof = prove(keypair.proving_key, cs, [1, 49, 7], seed=6)
        assert verify(keypair.verifying_key, [49], proof)

    def test_file_round_trip(self, tmp_path):
        cs = square_circuit()
        path = tmp_path / "circuit.r1cs"
        save_r1cs(cs, path)
        restored = load_r1cs(path)
        assert restored.num_constraints == cs.num_constraints

    def test_bad_magic_rejected(self):
        with pytest.raises(R1csFormatError, match="magic"):
            deserialize_r1cs(b"NOPE" + bytes(20))

    def test_bad_version_rejected(self):
        cs = square_circuit()
        data = bytearray(serialize_r1cs(cs))
        data[5] = 99
        with pytest.raises(R1csFormatError, match="version"):
            deserialize_r1cs(bytes(data))

    def test_trailing_bytes_rejected(self):
        cs = square_circuit()
        with pytest.raises(R1csFormatError, match="trailing"):
            deserialize_r1cs(serialize_r1cs(cs) + b"\x00")

    def test_out_of_range_variable_rejected(self):
        cs = ConstraintSystem()
        cs.allocate_public("y")
        x = cs.allocate_private("x")
        cs.enforce(LC.variable(99), LC.variable(x), LC.variable(x))
        with pytest.raises(R1csFormatError, match="outside"):
            deserialize_r1cs(serialize_r1cs(cs))

    def test_extraction_circuit_round_trip(self, watermarked_mlp):
        """The real Algorithm-1 circuit survives serialization."""
        from repro.circuit import FixedPointFormat
        from repro.zkrownn import CircuitConfig, build_extraction_circuit

        model, keys, _ = watermarked_mlp
        config = CircuitConfig(
            theta=0.0, fixed_point=FixedPointFormat(frac_bits=14, total_bits=40)
        )
        circuit = build_extraction_circuit(model, keys, config)
        blob = serialize_r1cs(circuit.constraint_system)
        restored = deserialize_r1cs(blob)
        assert restored.is_satisfied(circuit.assignment)
