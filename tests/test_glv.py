"""Tests for the GLV endomorphism decomposition and the fast G1 MSM kernel."""

import random

import pytest

from repro.curves.bn254 import P, R
from repro.curves.g1 import G1Point, jac_scalar_mul, jac_to_affine
from repro.curves.glv import (
    GLV_BETA,
    GLV_LAMBDA,
    glv_decompose,
    glv_endomorphism,
)
from repro.curves.msm import msm_g1, msm_g1_unsigned, naive_msm_g1

G = G1Point.generator()


def _affine(p: G1Point):
    return None if p.is_infinity() else (p.x, p.y)


class TestGlvConstants:
    def test_lambda_is_primitive_cube_root(self):
        assert GLV_LAMBDA != 1
        assert pow(GLV_LAMBDA, 3, R) == 1
        assert (GLV_LAMBDA * GLV_LAMBDA + GLV_LAMBDA + 1) % R == 0

    def test_beta_is_primitive_cube_root(self):
        assert GLV_BETA != 1
        assert pow(GLV_BETA, 3, P) == 1

    def test_endomorphism_is_lambda_on_generator(self):
        phi_g = glv_endomorphism((G.x, G.y))
        assert phi_g == jac_to_affine(jac_scalar_mul((G.x, G.y, 1), GLV_LAMBDA))

    def test_endomorphism_is_lambda_on_random_points(self, rng):
        for _ in range(5):
            p = G * rng.randrange(2, R)
            expected = p * GLV_LAMBDA
            x, y = glv_endomorphism((p.x, p.y))
            assert G1Point(x, y) == expected

    def test_endomorphism_image_on_curve(self, rng):
        p = G * rng.randrange(2, R)
        x, y = glv_endomorphism((p.x, p.y))
        assert G1Point(x, y).is_on_curve()


class TestGlvDecompose:
    @pytest.mark.parametrize(
        "k", [0, 1, 2, 3, R - 1, R - 2, (R - 1) // 2, R // 3, 2**127, 2**200]
    )
    def test_identity_fixed(self, k):
        k1, k2 = glv_decompose(k)
        assert (k1 + k2 * GLV_LAMBDA) % R == k % R

    def test_identity_random_and_halves_short(self, rng):
        for _ in range(200):
            k = rng.randrange(R)
            k1, k2 = glv_decompose(k)
            assert (k1 + k2 * GLV_LAMBDA) % R == k
            assert abs(k1).bit_length() <= 130
            assert abs(k2).bit_length() <= 130

    def test_scalar_above_order_reduced(self):
        k1, k2 = glv_decompose(R + 5)
        assert (k1 + k2 * GLV_LAMBDA) % R == 5


class TestGlvMsmAgainstNaive:
    """The satellite edge-case matrix: every kernel agrees with naive."""

    @pytest.mark.parametrize("n", [1, 2, 3, 30, 130])
    def test_random_inputs(self, n, rng):
        points = [_affine(G * rng.randrange(1, 5000)) for _ in range(n)]
        scalars = [rng.randrange(2 * R) for _ in range(n)]
        expected = G1Point.from_jacobian(naive_msm_g1(points, scalars))
        assert G1Point.from_jacobian(msm_g1(points, scalars)) == expected
        assert G1Point.from_jacobian(msm_g1_unsigned(points, scalars)) == expected

    def test_empty(self):
        assert G1Point.from_jacobian(msm_g1([], [])).is_infinity()

    def test_length_one(self):
        assert G1Point.from_jacobian(msm_g1([_affine(G)], [7])) == G * 7

    def test_zero_scalars(self):
        points = [_affine(G), _affine(G * 2)]
        assert G1Point.from_jacobian(msm_g1(points, [0, 0])).is_infinity()

    def test_scalar_order_minus_one(self):
        assert G1Point.from_jacobian(msm_g1([_affine(G)], [R - 1])) == -G

    def test_scalars_at_and_above_order(self):
        points = [_affine(G)] * 3
        scalars = [R, R + 1, 3 * R + 7]
        expected = G1Point.from_jacobian(naive_msm_g1(points, scalars))
        assert G1Point.from_jacobian(msm_g1(points, scalars)) == expected

    def test_infinity_points_skipped(self):
        points = [None, _affine(G), None]
        got = G1Point.from_jacobian(msm_g1(points, [5, 7, 9]))
        assert got == G * 7

    def test_duplicated_points(self):
        points = [_affine(G * 5)] * 6
        scalars = [1, 2, 3, 4, 5, 6]
        expected = G1Point.from_jacobian(naive_msm_g1(points, scalars))
        assert G1Point.from_jacobian(msm_g1(points, scalars)) == expected

    def test_opposite_points_cancel(self):
        p = G * 11
        points = [_affine(p), _affine(-p)]
        assert G1Point.from_jacobian(msm_g1(points, [9, 9])).is_infinity()

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            msm_g1([_affine(G)], [1, 2])

    def test_carry_into_top_window(self):
        # Scalars recoding to all-maximal digits exercise the carry that
        # spills past bit_length // c windows.
        for k in (2**21 - 1, 2**127 - 1, 2**130 - 1):
            expected = G1Point.from_jacobian(naive_msm_g1([_affine(G)], [k]))
            assert G1Point.from_jacobian(msm_g1([_affine(G)], [k])) == expected
