"""Tests for DeepSigns watermark key generation and persistence."""

import numpy as np
import pytest

from repro.datasets import mnist_like
from repro.nn import mnist_mlp_scaled
from repro.watermark.keys import (
    WatermarkKeys,
    activation_feature_dim,
    generate_keys,
)


@pytest.fixture(scope="module")
def model_and_data():
    rng = np.random.default_rng(1)
    data = mnist_like(400, 50, image_size=4, seed=2)
    model = mnist_mlp_scaled(input_dim=16, hidden=16, rng=rng)
    return model, data


class TestGeneration:
    def test_shapes(self, model_and_data):
        model, data = model_and_data
        keys = generate_keys(
            model, data.x_train, data.y_train,
            embed_layer=1, wm_bits=8, rng=np.random.default_rng(3),
        )
        assert keys.projection.shape == (16, 8)
        assert keys.signature.shape == (8,)
        assert keys.num_bits == 8
        assert keys.feature_dim == 16

    def test_triggers_come_from_target_class(self, model_and_data):
        model, data = model_and_data
        keys = generate_keys(
            model, data.x_train, data.y_train,
            embed_layer=1, wm_bits=4, target_class=3,
            rng=np.random.default_rng(3),
        )
        assert keys.target_class == 3
        # Every trigger must be a training sample of class 3.
        class3 = data.x_train[data.y_train == 3]
        for trig in keys.trigger_inputs:
            assert any(np.allclose(trig, row) for row in class3)

    def test_trigger_fraction_respected(self, model_and_data):
        model, data = model_and_data
        keys = generate_keys(
            model, data.x_train, data.y_train,
            embed_layer=1, wm_bits=4, trigger_fraction=0.01,
            min_triggers=2, rng=np.random.default_rng(3),
        )
        # 1% of 400 = 4 triggers.
        assert keys.num_triggers == 4

    def test_signature_is_binary(self, model_and_data):
        model, data = model_and_data
        keys = generate_keys(
            model, data.x_train, data.y_train,
            embed_layer=1, wm_bits=32, rng=np.random.default_rng(3),
        )
        assert set(np.unique(keys.signature)) <= {0, 1}

    def test_invalid_layer_rejected(self, model_and_data):
        model, data = model_and_data
        with pytest.raises(ValueError):
            generate_keys(
                model, data.x_train, data.y_train,
                embed_layer=99, wm_bits=4,
            )

    def test_missing_class_rejected(self, model_and_data):
        model, data = model_and_data
        with pytest.raises(ValueError):
            generate_keys(
                model, data.x_train, data.y_train,
                embed_layer=1, wm_bits=4, target_class=42,
            )

    def test_keys_differ_per_rng(self, model_and_data):
        model, data = model_and_data
        k1 = generate_keys(model, data.x_train, data.y_train,
                           embed_layer=1, wm_bits=8, rng=np.random.default_rng(1))
        k2 = generate_keys(model, data.x_train, data.y_train,
                           embed_layer=1, wm_bits=8, rng=np.random.default_rng(2))
        assert not np.allclose(k1.projection, k2.projection)


class TestValidation:
    def _valid(self):
        return WatermarkKeys(
            embed_layer=1,
            target_class=0,
            trigger_inputs=np.zeros((2, 16)),
            projection=np.zeros((16, 8)),
            signature=np.zeros(8, dtype=np.int64),
        )

    def test_valid_passes(self):
        self._valid().validate()

    def test_projection_signature_mismatch(self):
        keys = self._valid()
        keys.signature = np.zeros(4, dtype=np.int64)
        with pytest.raises(ValueError):
            keys.validate()

    def test_non_binary_signature(self):
        keys = self._valid()
        keys.signature = np.full(8, 2)
        with pytest.raises(ValueError):
            keys.validate()

    def test_empty_triggers(self):
        keys = self._valid()
        keys.trigger_inputs = np.zeros((0, 16))
        with pytest.raises(ValueError):
            keys.validate()

    def test_non_2d_projection(self):
        keys = self._valid()
        keys.projection = np.zeros(16)
        with pytest.raises(ValueError):
            keys.validate()


class TestPersistence:
    def test_save_load_round_trip(self, model_and_data, tmp_path):
        model, data = model_and_data
        keys = generate_keys(
            model, data.x_train, data.y_train,
            embed_layer=1, wm_bits=8, rng=np.random.default_rng(5),
        )
        path = tmp_path / "keys.npz"
        keys.save(path)
        restored = WatermarkKeys.load(path)
        assert restored.embed_layer == keys.embed_layer
        assert restored.target_class == keys.target_class
        np.testing.assert_allclose(restored.projection, keys.projection)
        np.testing.assert_array_equal(restored.signature, keys.signature)
        np.testing.assert_allclose(restored.trigger_inputs, keys.trigger_inputs)


class TestFeatureDim:
    def test_dense_layer(self, model_and_data):
        model, _ = model_and_data
        assert activation_feature_dim(model, 1, (16,)) == 16

    def test_conv_layer(self):
        from repro.nn import cifar10_cnn_scaled

        model = cifar10_cnn_scaled(image_size=12, channels=4)
        # After the first conv (stride 2): 4 x 5 x 5.
        assert activation_feature_dim(model, 0, (3, 12, 12)) == 4 * 5 * 5
