"""The circuit soundness auditor: static R1CS analysis end to end.

Four layers under test:

* the analysis passes themselves, against the adversarial fixtures in
  :mod:`badcircuits` -- every planted defect must surface at its
  expected severity, and the shipped catalog must audit clean;
* the *exploit* the auditor exists to prevent: a forged witness for the
  under-constrained fixture that satisfies the R1CS and produces a
  verifying Groth16 proof for a different public output;
* the GF(p) elimination engine, property-tested against brute-force
  enumeration of solution sets on small random systems;
* the integration surface: engine warn/strict modes, on-disk report
  caching, R1CS serialization v2 provenance round-trip (and v1
  compatibility), the accepted-findings baseline, the service endpoint,
  and the ``zkrownn audit-circuit`` CLI exit codes.
"""

import json
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from badcircuits import (
    ALL_BAD_CIRCUITS,
    degenerate_and_duplicate,
    free_hint,
    missing_range_check,
    unbound_output,
)
from repro.analysis import (
    AuditBaseline,
    AuditReport,
    CircuitAuditError,
    audit_constraint_system,
    audit_named_circuit,
    catalog_names,
    severity_rank,
)
from repro.analysis.linear import LinearSystem
from repro.cli import main as cli_main
from repro.engine import ProvingEngine
from repro.engine.compiled import CompiledCircuit
from repro.field.prime import BN254_R as R
from repro.snark import prove, setup, verify
from repro.snark.serialize import deserialize_r1cs, serialize_r1cs


def _audit(bad):
    return audit_constraint_system(bad.builder.cs, name=bad.builder.name)


# --------------------------------------------------------------- findings --


class TestBadCircuitFindings:
    @pytest.mark.parametrize(
        "factory", ALL_BAD_CIRCUITS, ids=lambda f: f.__name__
    )
    def test_planted_defects_flagged_at_expected_severity(self, factory):
        bad = factory()
        report = _audit(bad)
        got = {(f.pass_id, f.severity) for f in report.findings}
        for expected in bad.expect:
            assert expected in got, (
                f"{bad.builder.name}: expected finding {expected} "
                f"missing from {sorted(got)}"
            )

    def test_findings_carry_wire_provenance(self):
        report = _audit(free_hint())
        hint = next(
            f for f in report.findings if f.pass_id == "unconstrained-hint"
        )
        assert hint.wire_name == "free"
        assert hint.kind == "hint"

    def test_report_roundtrips_through_json(self):
        report = _audit(missing_range_check())
        clone = AuditReport.from_dict(
            json.loads(json.dumps(report.to_dict()))
        )
        assert clone.circuit == report.circuit
        assert [f.key for f in clone.findings] == [
            f.key for f in report.findings
        ]
        assert clone.counts() == report.counts()

    def test_honest_witnesses_still_satisfy_bad_circuits(self):
        # The fixtures are *under*-constrained, not broken: the honest
        # trace must satisfy them, or they test nothing interesting.
        for factory in ALL_BAD_CIRCUITS:
            bad = factory()
            if factory is unbound_output:
                continue  # its reserved output slot holds a placeholder 0
            assert bad.builder.cs.is_satisfied(bad.builder.assignment), (
                f"{bad.builder.name}: honest witness rejected"
            )


class TestShippedCircuitsClean:
    @pytest.mark.parametrize("name", catalog_names("tiny"))
    def test_catalog_circuit_audits_clean(self, name):
        report = audit_named_circuit(name, scale="tiny")
        assert not report.findings, report.render()
        # The determinism pass actually ran (kinds were known).
        assert "underconstrained-hint" in report.passes_run


# ---------------------------------------------------------------- exploit --


class TestForgedWitnessExploit:
    """The missing range check is a genuine soundness hole, not a lint."""

    def test_forged_witness_satisfies_and_proves(self):
        bad = missing_range_check(x=117, shift_bits=4)
        cs = bad.builder.cs
        honest = list(bad.builder.assignment)
        assert cs.is_satisfied(honest)

        # Forge: shift one unit from the quotient into the unchecked
        # remainder. (q-1)*16 + (rem+16) still equals x.
        q_i, rem_i, out_i = bad.wires["q"], bad.wires["rem"], bad.wires["out"]
        scale = bad.wires["scale"]
        forged = list(honest)
        forged[q_i] = (forged[q_i] - 1) % R
        forged[rem_i] = (forged[rem_i] + scale) % R
        forged[out_i] = forged[q_i]
        assert forged != honest
        assert cs.is_satisfied(forged)

        # Groth16 happily proves the forged witness, and the proof
        # VERIFIES -- for a different public output than the honest one.
        keypair = setup(cs, seed=1)
        proof = prove(keypair.proving_key, cs, forged, seed=2)
        forged_public = cs.public_inputs_of(forged)
        honest_public = cs.public_inputs_of(honest)
        assert forged_public != honest_public
        assert verify(keypair.verifying_key, forged_public, proof)

        # ... which is exactly what the auditor flags statically.
        report = _audit(bad)
        assert report.at_least("critical")
        assert any(
            f.pass_id == "underconstrained-output" for f in report.findings
        )

    def test_shipped_truncation_rejects_the_same_forgery(self):
        # Control: the real truncate gadget range-checks the remainder,
        # so the analogous perturbation no longer satisfies.
        from repro.circuit.builder import CircuitBuilder

        b = CircuitBuilder("honest-truncate")
        out = b.public_output("q_out")
        x = b.private_input("x", 117)
        q = b.truncate(x, 4, 12)
        b.bind_output(out, q)
        honest = list(b.assignment)
        assert b.cs.is_satisfied(honest)
        q_i = q.lc.as_single_variable()
        forged = list(honest)
        forged[q_i] = (forged[q_i] - 1) % R
        assert not b.cs.is_satisfied(forged)
        assert not _audit_builder_has_findings(b)


def _audit_builder_has_findings(builder):
    return bool(
        audit_constraint_system(builder.cs, name=builder.name).findings
    )


# ----------------------------------------------------- GF(p) elimination --


class TestLinearSystemProperty:
    """Gauss-Jordan determinedness == brute-force solution-set agreement.

    A variable is uniquely determined by a consistent linear system iff
    every solution of the *homogeneous* system has zero there.  For
    linear systems elimination is complete, so the two must agree
    exactly on small instances we can enumerate.
    """

    @settings(max_examples=60, deadline=None)
    @given(data=st.data())
    def test_matches_bruteforce_on_small_systems(self, data):
        p = 5
        n = data.draw(st.integers(min_value=1, max_value=3), label="nvars")
        rows = data.draw(
            st.lists(
                st.lists(
                    st.integers(min_value=0, max_value=p - 1),
                    min_size=n,
                    max_size=n,
                ),
                min_size=0,
                max_size=4,
            ),
            label="rows",
        )
        system = LinearSystem(p)
        for row in rows:
            system.add_equation({v: c for v, c in enumerate(row) if c})
        got = system.determined()

        # Brute force over the homogeneous solution set.
        solutions = []
        for packed in range(p ** n):
            x = [(packed // p ** i) % p for i in range(n)]
            if all(
                sum(c * xi for c, xi in zip(row, x)) % p == 0 for row in rows
            ):
                solutions.append(x)
        expected = {
            v for v in range(n) if all(x[v] == 0 for x in solutions)
        }
        assert got == expected

    def test_rank_and_pivots(self):
        system = LinearSystem(7)
        system.add_equation({0: 1, 1: 1})
        system.add_equation({1: 1})
        assert system.rank == 2
        assert system.determined() == {0, 1}
        system.add_equation({0: 3, 1: 4})  # dependent: no new info
        assert system.rank == 2


# --------------------------------------------------------------- engine --


class TestEngineAuditModes:
    def test_warn_counts_findings_and_continues(self, tmp_path):
        engine = ProvingEngine(cache_dir=str(tmp_path), audit="warn")
        bad = free_hint()
        compiled = CompiledCircuit.from_builder(bad.builder)
        report = engine.audit_circuit(compiled)
        assert report.findings
        assert engine.stats.audits == 1
        assert engine.stats.audit_findings == len(report.findings)
        # Second call is a pure cache hit.
        assert engine.audit_circuit(compiled) is report
        assert engine.stats.audits == 1

    def test_strict_rejects_critical(self, tmp_path):
        engine = ProvingEngine(cache_dir=str(tmp_path), audit="strict")

        def synthesize(b):
            b.public_output("o")  # never bound: critical finding
            x = b.private_input("x", 3)
            b.mul(x, x)
            return None

        with pytest.raises(CircuitAuditError) as excinfo:
            engine.synthesize("bad-shape", synthesize)
        assert excinfo.value.report.at_least("critical")
        assert engine.stats.audit_rejections == 1
        # CircuitAuditError is a ValueError: the service scheduler's
        # existing synthesis-failure handling fails the claim for free.
        assert isinstance(excinfo.value, ValueError)

    def test_strict_allows_clean_circuits(self, tmp_path):
        engine = ProvingEngine(cache_dir=str(tmp_path), audit="strict")

        def synthesize(b):
            out = b.public_output("o")
            x = b.private_input("x", 3)
            b.bind_output(out, b.mul(x, x))
            return None

        compiled, _ = engine.synthesize("good-shape", synthesize)
        assert engine.audit_report_for(compiled.digest) is not None

    def test_report_persists_to_artifact_store(self, tmp_path):
        bad = free_hint()
        compiled = CompiledCircuit.from_builder(bad.builder)
        engine1 = ProvingEngine(cache_dir=str(tmp_path), audit="warn")
        report1 = engine1.audit_circuit(compiled)
        assert (tmp_path / f"{compiled.digest}.audit.json").is_file()
        # A fresh engine sharing the store loads it without re-auditing.
        engine2 = ProvingEngine(cache_dir=str(tmp_path), audit="warn")
        report2 = engine2.audit_circuit(compiled)
        assert engine2.stats.audits == 0
        assert [f.key for f in report2.findings] == [
            f.key for f in report1.findings
        ]

    def test_audit_stored_circuit_by_digest(self, tmp_path):
        bad = missing_range_check()
        compiled = CompiledCircuit.from_builder(bad.builder)
        engine = ProvingEngine(cache_dir=str(tmp_path))
        engine._store.save_constraint_system(compiled.digest, compiled.cs)
        report = engine.audit_stored_circuit(compiled.digest)
        assert report is not None
        assert report.at_least("critical")
        assert engine.audit_stored_circuit("no-such-digest") is None

    def test_bad_audit_mode_rejected(self):
        with pytest.raises(ValueError):
            ProvingEngine(audit="nonsense")

    def test_audit_mode_from_env(self, monkeypatch):
        monkeypatch.setenv("ZKROWNN_CIRCUIT_AUDIT", "warn")
        assert ProvingEngine().audit_mode == "warn"
        monkeypatch.delenv("ZKROWNN_CIRCUIT_AUDIT")
        assert ProvingEngine().audit_mode == "off"


class TestAuditTiers:
    """Fast (warn-inline) vs deep audit tiers."""

    def test_fast_tier_skips_expensive_passes(self):
        bad = free_hint()
        fast = audit_constraint_system(bad.builder.cs, deep=False)
        assert fast.deep is False
        assert "underconstrained-hint" in fast.passes_skipped
        assert "duplicate-constraint" in fast.passes_skipped
        assert "underconstrained-hint" not in fast.passes_run
        deep = audit_constraint_system(bad.builder.cs)
        assert deep.deep is True
        assert "underconstrained-hint" in deep.passes_run
        assert "duplicate-constraint" in deep.passes_run

    def test_fast_tier_catches_structural_criticals(self):
        # Everything strict mode structurally rejects on is found by the
        # fast tier too: unbound outputs/publics don't need the fixpoint.
        fast = audit_constraint_system(
            unbound_output().builder.cs, deep=False
        )
        assert [
            (f.pass_id, f.severity) for f in fast.at_least("critical")
        ] == [("unbound-output", "critical")]
        # The high-severity structural checks fire as well.
        assert audit_constraint_system(
            free_hint().builder.cs, deep=False
        ).at_least("high")

    def test_fast_tier_defers_determinism_findings(self):
        # The forgeable truncation is invisible to the structural sweep
        # -- that's the documented warn-mode tradeoff; strict mode, the
        # CLI, and CI all run the deep tier and catch it.
        bad = missing_range_check()
        fast = audit_constraint_system(bad.builder.cs, deep=False)
        assert not fast.findings
        deep = audit_constraint_system(bad.builder.cs)
        assert deep.at_least("critical")

    def test_warn_engine_runs_fast_tier_inline(self, tmp_path):
        engine = ProvingEngine(cache_dir=str(tmp_path), audit="warn")

        def synthesize(b):
            out = b.public_output("o")
            x = b.private_input("x", 3)
            b.bind_output(out, b.mul(x, x))
            return None

        compiled, _ = engine.synthesize("shape", synthesize)
        report = engine.audit_report_for(compiled.digest)
        assert report is not None and report.deep is False

    def test_strict_engine_runs_deep_tier(self, tmp_path):
        engine = ProvingEngine(cache_dir=str(tmp_path), audit="strict")

        def synthesize(b):
            out = b.public_output("q_out")
            w = b.private_input("x", 117)
            q = b.alloc_hint("q", 117 >> 4)
            rem = b.alloc_hint("rem", 117 % 16)
            b.assert_equal(q.scale(16) + rem, w)  # no range check
            b.bind_output(out, q)
            return None

        # The defect is determinism-only (no structural finding), so
        # only the deep tier can reject it -- and strict mode does.
        with pytest.raises(CircuitAuditError) as excinfo:
            engine.synthesize("forgeable", synthesize)
        assert excinfo.value.report.deep is True
        assert any(
            f.pass_id == "underconstrained-output"
            for f in excinfo.value.report.at_least("critical")
        )

    def test_deep_request_upgrades_cached_fast_report(self, tmp_path):
        bad = missing_range_check()
        compiled = CompiledCircuit.from_builder(bad.builder)
        engine = ProvingEngine(cache_dir=str(tmp_path), audit="warn")
        fast = engine.audit_circuit(compiled, deep=False)
        assert fast.deep is False and not fast.findings
        assert engine.stats.audits == 1
        deep = engine.audit_circuit(compiled)
        assert deep.deep is True and deep.at_least("critical")
        assert engine.stats.audits == 2
        # The deep report now satisfies both tiers, memory and disk.
        assert engine.audit_circuit(compiled, deep=False) is deep
        assert engine.stats.audits == 2
        ondisk = json.loads(
            (tmp_path / f"{compiled.digest}.audit.json").read_text()
        )
        assert ondisk["deep"] is True

    def test_deep_flag_roundtrips_and_defaults_true(self):
        fast = audit_constraint_system(free_hint().builder.cs, deep=False)
        restored = AuditReport.from_dict(fast.to_dict())
        assert restored.deep is False
        legacy = fast.to_dict()
        del legacy["deep"]
        assert AuditReport.from_dict(legacy).deep is True


# --------------------------------------------------------- serialization --


class TestSerializationProvenance:
    def test_v2_roundtrips_kinds_and_expected_boolean(self):
        bad = missing_range_check()
        cs = bad.builder.cs
        clone = deserialize_r1cs(serialize_r1cs(cs))
        assert clone.variable_kinds == cs.variable_kinds
        assert [i for i, _ in clone.expected_boolean] == [
            i for i, _ in cs.expected_boolean
        ]
        # The audit of the deserialized system sees the same defects.
        report = audit_constraint_system(clone, name="clone")
        assert report.at_least("critical")

    def test_v1_blob_loads_with_unknown_kinds(self):
        bad = missing_range_check()
        cs = bad.builder.cs
        blob = serialize_r1cs(cs)
        # A v1 blob is the v2 blob minus the trailing provenance section
        # (one kind byte per variable + u32 count + u32 per entry).
        trailer = cs.num_variables + 4 + 4 * len(cs.expected_boolean)
        v1 = blob[: len(blob) - trailer]
        v1 = v1[:4] + struct.pack(">H", 1) + v1[6:]
        clone = deserialize_r1cs(v1)
        assert clone.num_constraints == cs.num_constraints
        assert clone.variable_kinds[0] == "one"
        assert set(clone.variable_kinds[1:]) == {"unknown"}
        # Without kinds the determinism pass cannot tell inputs from
        # hints: it must skip with a recorded reason, not guess.
        report = audit_constraint_system(clone, name="v1")
        assert "underconstrained-hint" in report.passes_skipped


# -------------------------------------------------------------- baseline --


class TestAuditBaseline:
    def test_split_accepts_matching_findings(self):
        report = _audit(free_hint())
        baseline = AuditBaseline({
            "free-hint": [{
                "pass": "unconstrained-hint",
                "wire": "free",
                "severity": "high",
                "justification": "planted fixture",
            }]
        })
        new, accepted = baseline.split("free-hint", report.findings)
        assert [f.pass_id for f in accepted] == ["unconstrained-hint"]
        assert all(f.pass_id != "unconstrained-hint" for f in new)

    def test_wire_patterns_match_families(self):
        report = _audit(degenerate_and_duplicate())
        baseline = AuditBaseline({
            "degenerate-duplicate": [
                {"pass": "degenerate-constraint", "wire": "*",
                 "justification": "fixture"},
                {"pass": "duplicate-constraint", "wire": "*",
                 "justification": "fixture"},
            ]
        })
        new, accepted = baseline.split(
            "degenerate-duplicate", report.findings
        )
        assert not new
        assert len(accepted) == len(report.findings)

    def test_load_rejects_missing_justification(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(json.dumps({
            "version": 1,
            "circuits": {"c": [{"pass": "unconstrained-hint", "wire": "*"}]},
        }))
        with pytest.raises(ValueError, match="justification"):
            AuditBaseline.load(path)

    def test_save_load_roundtrip(self, tmp_path):
        report = _audit(free_hint())
        baseline = AuditBaseline()
        baseline.add_report(report, "known fixture")
        path = tmp_path / "baseline.json"
        baseline.save(path)
        loaded = AuditBaseline.load(path)
        new, accepted = loaded.split("free-hint", report.findings)
        assert not new and accepted

    def test_checked_in_baseline_is_loadable(self):
        from pathlib import Path

        path = Path(__file__).parent / "audit_baseline.json"
        baseline = AuditBaseline.load(path)
        # Shipped circuits are clean, so the baseline accepts nothing.
        assert baseline.circuits == {}


# --------------------------------------------------------------- service --


class TestServiceIntegration:
    def test_circuit_audit_endpoint_payload(self, tmp_path):
        from repro.service import ClaimRegistry, ProofService
        from repro.service.registry import ClaimRecord

        registry = ClaimRegistry(tmp_path / "reg")
        service = ProofService(
            registry, cache_dir=str(tmp_path / "cache"), audit_mode="warn"
        )
        assert service.engine.audit_mode == "warn"

        bad = missing_range_check()
        compiled = CompiledCircuit.from_builder(bad.builder)
        service.engine._store.save_constraint_system(
            compiled.digest, compiled.cs
        )
        registry.register(ClaimRecord(
            claim_id="c1", model_digest="m", state="done",
            circuit_digest=compiled.digest,
        ))
        payload = service.circuit_audit("c1")
        assert payload["available"]
        assert payload["circuit_digest"] == compiled.digest
        report = AuditReport.from_dict(payload["report"])
        assert report.at_least("critical")

        # A claim still queued has no digest to audit yet.
        registry.register(ClaimRecord(claim_id="c2", model_digest="m"))
        assert not service.circuit_audit("c2")["available"]

    def test_scheduler_records_audit_rejection(self, tmp_path):
        from repro.service import ClaimRegistry
        from repro.service.scheduler import ProofScheduler, ProofTask

        registry = ClaimRegistry(tmp_path)
        scheduler = ProofScheduler(ProvingEngine(), registry)
        report = _audit(missing_range_check())
        task = ProofTask(
            claim_id="victim", shape_key="s", synthesize=lambda b: None
        )
        scheduler._record_audit_rejection(task, CircuitAuditError(report))
        entries = [
            e for e in registry.audit_entries("victim")
            if e["event"] == "circuit_audit_rejected"
        ]
        assert len(entries) == 1
        assert entries[0]["worst"] == "critical"
        assert entries[0]["counts"]["critical"] >= 1
        # Non-audit errors record nothing.
        scheduler._record_audit_rejection(task, ValueError("boom"))
        assert len(list(registry.audit_entries("victim"))) == 1

    def test_service_rejects_bad_audit_mode(self, tmp_path):
        from repro.service import ClaimRegistry, ProofService

        with pytest.raises(ValueError):
            ProofService(
                ClaimRegistry(tmp_path),
                engine=ProvingEngine(),
                audit_mode="nope",
            )


# ------------------------------------------------------------------- CLI --


class TestAuditCircuitCli:
    def test_shipped_gadgets_exit_zero(self, capsys):
        assert cli_main(["audit-circuit", "BER", "ReLU", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "clean: no findings" in out
        assert "audit PASSED" in out

    def test_case_insensitive_names(self):
        assert cli_main(["audit-circuit", "ber", "--scale", "tiny"]) == 0

    def test_unknown_name_exits_two(self, capsys):
        assert cli_main(["audit-circuit", "NoSuchCircuit"]) == 2

    def test_no_selection_exits_two(self, capsys):
        assert cli_main(["audit-circuit"]) == 2

    def test_bad_circuit_exits_nonzero(self, monkeypatch, capsys):
        import repro.bench.table1 as table1

        def bad_builders(scale):
            return {"Planted": lambda: missing_range_check().builder}

        monkeypatch.setattr(table1, "builders_for_scale", bad_builders)
        assert cli_main(["audit-circuit", "--all"]) == 1
        out = capsys.readouterr().out
        assert "audit FAILED" in out

    def test_baseline_accepts_findings(self, monkeypatch, tmp_path, capsys):
        import repro.bench.table1 as table1

        def bad_builders(scale):
            return {"Planted": lambda: free_hint().builder}

        monkeypatch.setattr(table1, "builders_for_scale", bad_builders)
        # Without a baseline the high-severity finding fails the audit ...
        assert cli_main(["audit-circuit", "--all"]) == 1
        capsys.readouterr()
        # ... --write-baseline records it, and the re-run passes.
        baseline = tmp_path / "baseline.json"
        assert cli_main([
            "audit-circuit", "--all",
            "--write-baseline", str(baseline),
            "--justification", "planted for the test",
        ]) == 0
        capsys.readouterr()
        assert cli_main([
            "audit-circuit", "--all", "--baseline", str(baseline)
        ]) == 0
        out = capsys.readouterr().out
        assert "(baseline)" in out

    def test_json_output(self, capsys):
        assert cli_main(["audit-circuit", "BER", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["failed"] is False
        assert payload["circuits"][0]["circuit"] == "BER"
