"""Property tests for the numpy limb kernels against the int reference.

Every vectorized routine in ``repro.field.limb`` has a scalar twin:
``int`` arithmetic for the field ops, ``_batch_affine_add`` /
``_reduce_buckets`` for the curve kernels.  These tests pin exact
agreement on boundary values (0, 1, p-1, p-2, limb edges), random
residues, and the structural edge cases the MSM layer depends on
(doubling lanes, cancellation lanes, the ADD_TILE tiling split, and the
python-tail handoff of ``reduce_bucket_grid``).
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

import repro.field.limb as limb
from repro.curves.bn254 import P
from repro.curves.bn254 import R as FR
from repro.curves.g1 import G1Point
from repro.curves.msm import _batch_affine_add, _reduce_buckets
from repro.field.limb import (
    LimbContext,
    batch_affine_add_limbs,
    get_limb_context,
    reduce_bucket_grid,
    reset_limb_contexts,
)


def _edge_values(p: int):
    mask32 = (1 << 32) - 1
    vals = {
        0,
        1,
        2,
        3,
        p - 1,
        p - 2,
        (p - 1) // 2,
        (p + 1) // 2,
        mask32,
        mask32 + 1,
        (1 << 64) - 1,
        (1 << 128) % p,
        p >> 1,
    }
    return sorted(v % p for v in vals)


def _rng():
    return random.Random(20230711)


@pytest.fixture(params=[P, FR], ids=["Fp", "Fr"])
def ctx(request):
    return get_limb_context(request.param)


class TestLimbRepresentation:
    def test_to_from_limbs_roundtrip(self, ctx):
        rng = _rng()
        vals = _edge_values(ctx.modulus) + [
            rng.randrange(ctx.modulus) for _ in range(200)
        ]
        arr = ctx.to_limbs(vals)
        assert arr.shape == (ctx.limbs, len(vals))
        assert arr.dtype == np.uint64
        assert ctx.from_limbs(arr) == vals

    def test_limb_radix_is_2_32(self, ctx):
        arr = ctx.to_limbs([ctx.modulus - 1])
        assert int(arr.max()) < 1 << 32

    def test_mont_roundtrip(self, ctx):
        rng = _rng()
        vals = _edge_values(ctx.modulus) + [
            rng.randrange(ctx.modulus) for _ in range(100)
        ]
        arr = ctx.to_limbs(vals)
        assert ctx.from_limbs(ctx.from_mont(ctx.to_mont(arr))) == vals

    def test_is_zero_mask(self, ctx):
        vals = [0, 1, 0, ctx.modulus - 1, 0]
        mask = ctx.is_zero(ctx.to_limbs(vals))
        assert mask.tolist() == [True, False, True, False, True]


class TestLimbArithmetic:
    def test_mont_mul_matches_int_reference(self, ctx):
        p = ctx.modulus
        rng = _rng()
        edges = _edge_values(p)
        a_vals = edges + [rng.randrange(p) for _ in range(150)]
        b_vals = list(reversed(edges)) + [rng.randrange(p) for _ in range(150)]
        a = ctx.to_mont(ctx.to_limbs(a_vals))
        b = ctx.to_mont(ctx.to_limbs(b_vals))
        got = ctx.from_limbs(ctx.from_mont(ctx.mont_mul(a, b)))
        assert got == [x * y % p for x, y in zip(a_vals, b_vals)]

    def test_redc_extremes(self, ctx):
        # (p-1)^2 drives every column of the schoolbook product to its
        # maximum and forces the final conditional subtract; the zero and
        # one rows pin the degenerate ends of REDC's input range.
        p = ctx.modulus
        vals = [p - 1, p - 1, 0, 1, p - 2]
        a = ctx.to_mont(ctx.to_limbs(vals))
        sq = ctx.from_limbs(ctx.from_mont(ctx.mont_mul(a, a)))
        assert sq == [v * v % p for v in vals]

    def test_mont_mul_broadcasts_single_column(self, ctx):
        p = ctx.modulus
        rng = _rng()
        vals = [rng.randrange(p) for _ in range(33)]
        k = rng.randrange(1, p)
        a = ctx.to_mont(ctx.to_limbs(vals))
        kcol = ctx.to_mont(ctx.to_limbs([k]))
        got = ctx.from_limbs(ctx.from_mont(ctx.mont_mul(a, kcol)))
        assert got == [v * k % p for v in vals]

    def test_addmod_submod_negmod(self, ctx):
        p = ctx.modulus
        rng = _rng()
        edges = _edge_values(p)
        a_vals = edges + [rng.randrange(p) for _ in range(150)]
        b_vals = list(reversed(edges)) + [rng.randrange(p) for _ in range(150)]
        # Force both reduction branches: a + b >= p and a < b.
        a_vals += [p - 1, 1, 0]
        b_vals += [p - 1, p - 1, 0]
        a = ctx.to_limbs(a_vals)
        b = ctx.to_limbs(b_vals)
        assert ctx.from_limbs(ctx.addmod(a, b)) == [
            (x + y) % p for x, y in zip(a_vals, b_vals)
        ]
        assert ctx.from_limbs(ctx.submod(a, b)) == [
            (x - y) % p for x, y in zip(a_vals, b_vals)
        ]
        assert ctx.from_limbs(ctx.negmod(a)) == [-x % p for x in a_vals]

    def test_batch_inv_tail_path(self, ctx):
        # Width below INV_TAIL: the whole inversion runs through the
        # sequential python Montgomery trick.
        p = ctx.modulus
        rng = _rng()
        vals = [1, p - 1, 2] + [rng.randrange(1, p) for _ in range(5)]
        a = ctx.to_mont(ctx.to_limbs(vals))
        got = ctx.from_limbs(ctx.from_mont(ctx.batch_inv_mont(a)))
        assert got == [pow(v, -1, p) for v in vals]

    def test_batch_inv_tree_path(self, ctx):
        # Odd width > INV_TAIL exercises the vectorized product tree,
        # including the unpaired-lane carry at every level.
        p = ctx.modulus
        rng = _rng()
        n = ctx.INV_TAIL * 2 + 3
        vals = [rng.randrange(1, p) for _ in range(n)]
        a = ctx.to_mont(ctx.to_limbs(vals))
        got = ctx.from_limbs(ctx.from_mont(ctx.batch_inv_mont(a)))
        assert got == [pow(v, -1, p) for v in vals]

    def test_batch_inv_rejects_zero_lane(self, ctx):
        a = ctx.to_mont(ctx.to_limbs([1, 0, 2]))
        with pytest.raises(ZeroDivisionError):
            ctx.batch_inv_mont(a)


def _g1_points(n: int, seed: int = 5):
    rng = random.Random(seed)
    g = G1Point.generator()
    return [(g * rng.randrange(1, FR)) for _ in range(n)]


def _to_mont_coords(ctx, points):
    xs = ctx.to_mont(ctx.to_limbs([pt.x for pt in points]))
    ys = ctx.to_mont(ctx.to_limbs([pt.y for pt in points]))
    return xs, ys


class TestBatchAffineAdd:
    def test_matches_scalar_kernel_with_mixed_lanes(self):
        ctx = get_limb_context(P)
        pts = _g1_points(24)
        ps = [(pt.x, pt.y) for pt in pts[:12]]
        qs = [(pt.x, pt.y) for pt in pts[12:]]
        # Doubling lanes (equal points) and cancellation lanes (P, -P).
        ps += [(pts[0].x, pts[0].y), (pts[1].x, pts[1].y)]
        qs += [(pts[0].x, pts[0].y), (pts[1].x, P - pts[1].y)]
        expected = _batch_affine_add(ps, qs)
        x1 = ctx.to_mont(ctx.to_limbs([x for x, _ in ps]))
        y1 = ctx.to_mont(ctx.to_limbs([y for _, y in ps]))
        x2 = ctx.to_mont(ctx.to_limbs([x for x, _ in qs]))
        y2 = ctx.to_mont(ctx.to_limbs([y for _, y in qs]))
        x3, y3, inf = batch_affine_add_limbs(ctx, x1, y1, x2, y2)
        xs = ctx.from_limbs(ctx.from_mont(x3))
        ys = ctx.from_limbs(ctx.from_mont(y3))
        got = [
            None if inf[i] else (xs[i], ys[i]) for i in range(len(ps))
        ]
        assert got == expected

    def test_tiling_split_matches_single_tile(self, monkeypatch):
        # Shrink ADD_TILE so a modest batch spans several tiles with a
        # ragged final tile; results must be identical to the untiled
        # pass lane for lane.
        ctx = get_limb_context(P)
        pts = _g1_points(23, seed=9)
        qts = _g1_points(23, seed=10)
        x1, y1 = _to_mont_coords(ctx, pts)
        x2, y2 = _to_mont_coords(ctx, qts)
        rx, ry, rinf = batch_affine_add_limbs(ctx, x1, y1, x2, y2)
        monkeypatch.setattr(limb, "ADD_TILE", 7)
        tx, ty, tinf = batch_affine_add_limbs(ctx, x1, y1, x2, y2)
        assert np.array_equal(rx, tx)
        assert np.array_equal(ry, ty)
        assert np.array_equal(rinf, tinf)


class TestReduceBucketGrid:
    def _scatter(self, n_points: int, n_buckets: int, seed: int = 11):
        rng = random.Random(seed)
        pts = _g1_points(n_points, seed=seed + 1)
        entries = [(rng.randrange(n_buckets), (pt.x, pt.y)) for pt in pts]
        # Structural edge cases: a duplicated point in one bucket
        # (doubling), an inverse pair in another (cancels to None if
        # alone), and one bucket left empty by construction.
        x, y = pts[0].x, pts[0].y
        entries += [(0, (x, y)), (0, (x, y))]
        entries += [(1, (x, y)), (1, (x, P - y))]
        entries = [(b, pt) for b, pt in entries if b != n_buckets - 1]
        return entries

    def _expected(self, entries, n_buckets):
        buckets = [[] for _ in range(n_buckets)]
        for b, pt in entries:
            buckets[b].append(pt)
        return _reduce_buckets(buckets, _batch_affine_add)

    def test_matches_scalar_reduction(self):
        ctx = get_limb_context(P)
        entries = self._scatter(80, 7)
        expected = self._expected(entries, 7)
        xs = ctx.to_mont(ctx.to_limbs([pt[0] for _, pt in entries]))
        ys = ctx.to_mont(ctx.to_limbs([pt[1] for _, pt in entries]))
        bids = np.asarray([b for b, _ in entries], dtype=np.int64)
        got = reduce_bucket_grid(ctx, xs, ys, bids, 7)
        assert got == expected

    def test_tail_reduce_handoff(self):
        # With min_pairs above the first round's width the very first
        # round hands off: tail_reduce must see every point, in canonical
        # int form, and its return value is passed through verbatim.
        ctx = get_limb_context(P)
        entries = self._scatter(40, 5, seed=13)
        expected = self._expected(entries, 5)
        xs = ctx.to_mont(ctx.to_limbs([pt[0] for _, pt in entries]))
        ys = ctx.to_mont(ctx.to_limbs([pt[1] for _, pt in entries]))
        bids = np.asarray([b for b, _ in entries], dtype=np.int64)
        seen = {}

        def tail(buckets):
            seen["total"] = sum(len(b) for b in buckets)
            return _reduce_buckets(buckets, _batch_affine_add)

        got = reduce_bucket_grid(
            ctx, xs, ys, bids, 5, min_pairs=1 << 30, tail_reduce=tail
        )
        assert got == expected
        assert seen["total"] == len(entries)

    def test_tail_reduce_midway_matches_pure_vectorized(self):
        # A moderate min_pairs lets a few vectorized rounds run before
        # the scalar tail takes over; both routes must agree exactly.
        ctx = get_limb_context(P)
        entries = self._scatter(120, 6, seed=17)
        xs = ctx.to_mont(ctx.to_limbs([pt[0] for _, pt in entries]))
        ys = ctx.to_mont(ctx.to_limbs([pt[1] for _, pt in entries]))
        bids = np.asarray([b for b, _ in entries], dtype=np.int64)
        pure = reduce_bucket_grid(ctx, xs.copy(), ys.copy(), bids.copy(), 6)
        mixed = reduce_bucket_grid(
            ctx,
            xs,
            ys,
            bids,
            6,
            min_pairs=16,
            tail_reduce=lambda b: _reduce_buckets(b, _batch_affine_add),
        )
        assert mixed == pure


class TestContextRegistry:
    def test_context_is_cached_per_modulus(self):
        assert get_limb_context(P) is get_limb_context(P)
        assert get_limb_context(P) is not get_limb_context(FR)

    def test_reset_drops_cached_contexts(self):
        before = get_limb_context(P)
        reset_limb_contexts()
        after = get_limb_context(P)
        assert after is not before

    def test_rejects_even_modulus(self):
        with pytest.raises(ValueError):
            LimbContext(1 << 8)
