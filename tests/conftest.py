"""Shared fixtures and hypothesis configuration.

Expensive cryptographic artifacts (Groth16 keypairs, trained watermarked
models) are session-scoped: the pure-Python pairing stack makes per-test
setup prohibitive, and reuse also exercises the paper's amortization story
(one setup, many proofs).
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture(scope="session", autouse=True)
def _isolate_machine_profile():
    """Keep an ambient ``~/.zkrownn/profile.json`` out of the test run.

    A machine profile written by ``zkrownn tune`` on the dev box would
    otherwise steer field-backend and window selection mid-suite; tests
    that exercise profile loading opt back in with monkeypatch.
    """
    import os

    os.environ.setdefault("ZKROWNN_PROFILE", "off")
    from repro.tuning.profile import clear_profile_cache

    clear_profile_cache()
    yield


@pytest.fixture
def rng() -> random.Random:
    return random.Random(0xC0FFEE)


@pytest.fixture
def nprng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


# ----------------------------------------------------------- snark fixtures --


def _cubic_circuit(x_value: int):
    """x^3 + x + 5 = y with private x: the canonical tiny R1CS."""
    from repro.snark import ConstraintSystem, LinearCombination as LC

    cs = ConstraintSystem()
    y = cs.allocate_public("y")
    x = cs.allocate_private("x")
    x2 = cs.allocate_private("x2")
    x3 = cs.allocate_private("x3")
    cs.enforce(LC.variable(x), LC.variable(x), LC.variable(x2))
    cs.enforce(LC.variable(x2), LC.variable(x), LC.variable(x3))
    cs.enforce(
        LC.variable(x3) + LC.variable(x) + LC.constant(5),
        LC.constant(1),
        LC.variable(y),
    )
    assignment = [1, x_value**3 + x_value + 5, x_value, x_value**2, x_value**3]
    return cs, assignment


@pytest.fixture(scope="session")
def cubic_circuit():
    return _cubic_circuit(3)


@pytest.fixture(scope="session")
def cubic_keypair(cubic_circuit):
    from repro.snark import setup

    cs, _ = cubic_circuit
    return setup(cs, seed=42)


# ------------------------------------------------------- watermark fixtures --


@pytest.fixture(scope="session")
def watermarked_mlp():
    """A trained, watermarked scaled MLP with its keys and data.

    BER 0 after embedding; shared by watermark, zkrownn, and integration
    tests.  Treat as read-only; copy before mutating.
    """
    from repro.datasets import mnist_like
    from repro.nn import Adam, mnist_mlp_scaled, train_classifier
    from repro.watermark import EmbedConfig, embed_watermark, generate_keys

    np_rng = np.random.default_rng(0)
    data = mnist_like(600, 150, image_size=4, seed=1)
    model = mnist_mlp_scaled(input_dim=16, hidden=16, rng=np_rng)
    train_classifier(
        model, data.x_train, data.y_train, Adam(0.005),
        epochs=5, batch_size=32, rng=np_rng,
    )
    keys = generate_keys(
        model, data.x_train, data.y_train,
        embed_layer=1, wm_bits=8, min_triggers=4, rng=np_rng,
    )
    keys.trigger_inputs = keys.trigger_inputs[:4]
    report = embed_watermark(
        model, keys, data.x_train, data.y_train,
        config=EmbedConfig(epochs=20, seed=3, lambda_projection=5.0),
    )
    assert report.ber_after == 0.0, "fixture embedding must converge"
    return model, keys, data


@pytest.fixture(scope="session")
def ownership_setup(watermarked_mlp):
    """Extraction circuit + Groth16 keypair for the watermarked MLP."""
    from repro.circuit import FixedPointFormat
    from repro.snark import setup
    from repro.zkrownn import CircuitConfig, build_extraction_circuit

    model, keys, _ = watermarked_mlp
    config = CircuitConfig(
        theta=0.0, fixed_point=FixedPointFormat(frac_bits=14, total_bits=40)
    )
    circuit = build_extraction_circuit(model, keys, config)
    keypair = setup(circuit.constraint_system, seed=7)
    return config, circuit, keypair
