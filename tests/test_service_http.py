"""End-to-end proof-service tests over real localhost HTTP.

The acceptance path of the service subsystem: a claim submitted through
:class:`ServiceClient` must yield a proof byte-identical to the direct
``ProvingEngine.prove_job`` path, verify via ``POST /verify``, survive a
server restart in the registry, and share compile/setup (and one
scheduled batch) with a concurrent same-shape submission.
"""

import pytest

from repro.circuit import FixedPointFormat
from repro.engine import ProvingEngine
from repro.service import (
    ClaimRegistry,
    ProofServer,
    ProofService,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
)
from repro.zkrownn import CircuitConfig


@pytest.fixture(scope="module")
def claim_setup(watermarked_mlp):
    model, keys, _ = watermarked_mlp
    config = CircuitConfig(
        theta=0.0, fixed_point=FixedPointFormat(frac_bits=14, total_bits=40)
    )
    return model, keys, config


class TestEndToEnd:
    def test_submit_prove_fetch_verify_restart(self, tmp_path, claim_setup):
        model, keys, config = claim_setup
        root = tmp_path / "registry"
        server = ProofServer(ProofService(ClaimRegistry(root))).start()
        try:
            client = ServiceClient(server.url)
            health = client.health()
            assert health["status"] == "ok"

            # -- submit and prove claim 1 --------------------------------
            submitted = client.submit_claim(
                model, keys, config, seed=5, setup_seed=99
            )
            claim_id = submitted["claim_id"]
            assert submitted["state"] == "queued"
            status = client.wait(claim_id, timeout=300)
            assert status["state"] == "done", status
            assert status["timings"]["batch_prove_seconds"] > 0

            # -- fetch: the ~hundreds-of-bytes artifact ------------------
            claim = client.fetch_claim(claim_id)
            assert len(claim.proof_bytes) == 128

            # -- byte-identical to the direct in-process engine path -----
            from repro.zkrownn import (
                extraction_structure_key,
                extraction_synthesizer,
            )

            direct = ProvingEngine().prove_job(
                extraction_structure_key(model, keys, config),
                extraction_synthesizer(model, keys, config),
                seed=5,
                setup_seed=99,
            )
            assert direct.proof.to_bytes() == claim.proof_bytes

            # -- verify: server-side and trustless client-side -----------
            assert client.verify_remote(claim_id)["accepted"]
            assert client.verify_local(claim_id, model).accepted

            # -- second same-shape claim: compile + setup are cache hits --
            second = client.submit_claim(
                model, keys, config, seed=6, setup_seed=99
            )
            assert client.wait(second["claim_id"], timeout=300)["state"] == "done"
            stats = client.stats()
            assert stats["engine"]["compile_misses"] == 1
            assert stats["engine"]["compile_hits"] >= 1
            assert stats["engine"]["setup_misses"] == 1
            assert stats["engine"]["setup_hits"] >= 1
            assert stats["scheduler"]["done"] == 2

            # -- idempotent resubmission (content addressing) ------------
            again = client.submit_claim(model, keys, config, seed=5, setup_seed=99)
            assert again["claim_id"] == claim_id
            assert again["resubmission"] is True

            # -- audit trail reaches the HTTP surface --------------------
            events = [e["event"] for e in client.audit(claim_id)]
            assert "registered" in events and "proved" in events
        finally:
            server.stop()

        # -- restart: a new server over the same registry still serves the
        # claim, its verifying key, and verification -----------------------
        server2 = ProofServer(ProofService(ClaimRegistry(root))).start()
        try:
            client2 = ServiceClient(server2.url)
            reloaded = client2.fetch_claim(claim_id)
            assert reloaded.proof_bytes == claim.proof_bytes
            assert client2.verify_remote(claim_id)["accepted"]
            assert client2.verify_local(claim_id, model).accepted
            assert client2.status(claim_id)["state"] == "done"

            # -- revocation: bytes retained, verification refused ---------
            client2.revoke(claim_id, "test dispute lost")
            assert client2.status(claim_id)["state"] == "revoked"
            assert not client2.verify_remote(claim_id)["accepted"]
            with pytest.raises(ServiceError) as excinfo:
                client2.fetch_claim(claim_id)
            assert excinfo.value.status == 404
        finally:
            server2.stop()

    def test_concurrent_same_shape_submissions_share_one_batch(
        self, tmp_path, claim_setup
    ):
        model, keys, config = claim_setup
        service = ProofService(ClaimRegistry(tmp_path / "reg2"))
        # HTTP up, scheduler paused: both submissions are queued together,
        # so the first dispatch must drain them as ONE batch.
        server = ProofServer(service).start(start_service=False)
        try:
            client = ServiceClient(server.url)
            first = client.submit_claim(model, keys, config, seed=21)
            second = client.submit_claim(model, keys, config, seed=22)
            assert first["claim_id"] != second["claim_id"]
            assert client.health()["queue_depth"] == 2

            service.start()
            for submitted in (first, second):
                assert client.wait(
                    submitted["claim_id"], timeout=300
                )["state"] == "done"

            stats = client.stats()
            # One scheduled batch served both claims...
            assert stats["scheduler"]["batches"] == 1
            assert stats["scheduler"]["largest_batch"] == 2
            # ...over one compile and one setup (the cache hit).
            assert stats["engine"]["compile_misses"] == 1
            assert stats["engine"]["compile_hits"] == 1
            assert stats["engine"]["setup_misses"] == 1
            assert stats["engine"]["proof_batches"] == 1
            # Distinct seeds -> distinct proofs for the same statement.
            a = client.fetch_claim(first["claim_id"])
            b = client.fetch_claim(second["claim_id"])
            assert a.proof_bytes != b.proof_bytes
            assert a.model_sha256 == b.model_sha256

            listed = client.list_claims(model_digest=a.model_sha256, state="done")
            assert len(listed) == 2
        finally:
            server.stop()


class TestHttpSurface:
    @pytest.fixture()
    def server(self, tmp_path):
        server = ProofServer(ProofService(ClaimRegistry(tmp_path / "reg"))).start()
        yield server
        server.stop()

    def test_unknown_claim_is_404(self, server):
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError) as excinfo:
            client.status("no-such-claim")
        assert excinfo.value.status == 404

    def test_garbage_submission_is_400(self, server):
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/claims", body=b"this is not a frame")
        assert excinfo.value.status == 400

    def test_corrupted_frame_is_400(self, server, claim_setup):
        from repro.service import wire

        model, keys, config = claim_setup
        frame = bytearray(wire.encode_claim_request(
            wire.ClaimRequest(model=model, keys=keys, config=config)
        ))
        frame[len(frame) // 2] ^= 0x40
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError) as excinfo:
            client._request("POST", "/claims", body=bytes(frame))
        assert excinfo.value.status == 400

    def test_verify_without_claim_id_is_400(self, server):
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError) as excinfo:
            client._request(
                "POST", "/verify", body=b"{}",
                content_type="application/json",
            )
        assert excinfo.value.status == 400

    def test_unknown_route_is_404(self, server):
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError) as excinfo:
            client._json("GET", "/not-a-route")
        assert excinfo.value.status == 404

    def test_stats_and_health_shapes(self, server):
        client = ServiceClient(server.url)
        stats = client.stats()
        assert set(stats) >= {"engine", "scheduler", "registry", "backend"}
        health = client.health()
        assert health["queue_depth"] == 0
        assert health["recovered_claims"] == 0
        assert health["owner_token"]

    def test_empty_key_log(self, server):
        assert ServiceClient(server.url).key_log() == []

    def test_unknown_vk_digest_is_404(self, server):
        client = ServiceClient(server.url)
        with pytest.raises(ServiceError) as excinfo:
            client.fetch_vk_by_digest("f" * 64)
        assert excinfo.value.status == 404


class TestBodyReads:
    """``_body`` must loop to Content-Length, never decode a short read."""

    class _ChunkedRFile:
        """Delivers a body at most ``chunk`` bytes per read (slow socket)."""

        def __init__(self, data: bytes, chunk: int = 3):
            self._data = data
            self._chunk = chunk

        def read(self, n: int) -> bytes:
            take = min(n, self._chunk, len(self._data))
            out, self._data = self._data[:take], self._data[take:]
            return out

    def _handler(self, rfile, content_length: int):
        from repro.service.server import _ServiceHandler

        handler = _ServiceHandler.__new__(_ServiceHandler)  # no socket
        handler.headers = {"Content-Length": str(content_length)}
        handler.rfile = rfile
        return handler

    def test_chunked_body_is_reassembled(self):
        body = bytes(range(256)) * 5
        handler = self._handler(self._ChunkedRFile(body, chunk=7), len(body))
        assert handler._body() == body

    def test_truncated_body_raises_not_decodes(self):
        body = b"only-half-arrived"
        handler = self._handler(self._ChunkedRFile(body), len(body) + 100)
        with pytest.raises(ValueError, match="truncated"):
            handler._body()

    def test_empty_body(self):
        handler = self._handler(self._ChunkedRFile(b""), 0)
        assert handler._body() == b""


class TestFailedResubmission:
    def test_resubmitting_a_failed_claim_resets_it_to_queued(
        self, tmp_path, claim_setup
    ):
        import numpy as np

        from repro.nn import mnist_mlp_scaled
        from repro.service import wire

        _, keys, config = claim_setup
        # Same architecture, fresh random weights: watermark extraction
        # fails, so the claim ends up 'failed'.
        imposter = mnist_mlp_scaled(
            input_dim=16, hidden=16, rng=np.random.default_rng(424242)
        )
        frame = wire.encode_claim_request(
            wire.ClaimRequest(model=imposter, keys=keys, config=config)
        )
        service = ProofService(ClaimRegistry(tmp_path / "reg3"))
        try:
            service.start()
            first = service.submit(frame)
            assert service.scheduler.wait(
                first["claim_id"], timeout=300
            ) == "failed"
            assert service.status(first["claim_id"])["state"] == "failed"
        finally:
            service.close()

        # Scheduler now stopped: the service must refuse new work with a
        # retryable 503 rather than ack claims this process will never
        # prove -- the client's failover machinery moves on to a replica.
        with pytest.raises(ServiceUnavailable) as excinfo:
            service.submit(frame)
        assert excinfo.value.status == 503
        assert excinfo.value.retry_after > 0

        # A replacement replica over the same registry accepts the
        # resubmission and resets the stale terminal failure to QUEUED.
        replacement = ProofService(ClaimRegistry(tmp_path / "reg3"))
        try:
            again = replacement.submit(frame)
            assert again["claim_id"] == first["claim_id"]
            assert again["resubmission"] is False
            status = replacement.status(first["claim_id"])
            assert status["state"] == "queued"
            assert status["error"] == ""
        finally:
            replacement.close()
