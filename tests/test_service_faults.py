"""Seeded chaos suite: the proof service under deterministic injected faults.

Every scenario here runs against a :class:`FaultPlan` whose firing
schedule is a pure function of the seed, so a failing seed IS the bug
report -- rerun with ``ZKROWNN_CHAOS_SEEDS=<seed>`` to replay it
exactly.  The matrix defaults to seeds 0,1,2; CI passes the same.

What must hold under chaos:

* **No lost claims** -- a submit the client was ACKed for (or retried to
  an ack after a crash) is recoverable by a restarted replica.
* **No double-proves** -- a claim is dispatched to the prover once, even
  when crashes, watchdog kills, and rescues race each other.
* **Byte-identical proofs** -- a claim rescued by a second replica after
  the first died mid-prove yields exactly the bytes an uninterrupted
  direct-engine run yields.
* **Graceful degradation** -- overload sheds with 429, drain sheds with
  503, expired deadlines are shed at dispatch, poison claims are
  quarantined with their error chain instead of crash-looping a worker.
* **Client resilience** -- retries with backoff ride out resets and
  shedding; a dead replica trips its circuit breaker and traffic fails
  over; ``wait()`` survives transient transport errors mid-poll.

Set ``ZKROWNN_CHAOS_SUMMARY=<path>`` to write a JSON artifact of every
plan's injection counts (CI uploads it).
"""

import json
import os
import socket
import time
from pathlib import Path

import numpy as np
import pytest

from repro.circuit import FixedPointFormat
from repro.engine import ProvingEngine
from repro.engine.engine import ProveBudgetExceeded
from repro.nn.layers import Dense, ReLU, Sigmoid
from repro.nn.model import Sequential
from repro.service import (
    CircuitBreaker,
    ClaimRecord,
    ClaimRegistry,
    FaultPlan,
    FaultSpec,
    JobState,
    ProofScheduler,
    ProofServer,
    ProofService,
    ProofTask,
    RetryPolicy,
    ServiceClient,
    ServiceError,
    ServiceUnavailable,
    SimulatedCrash,
    injected,
    wire,
)
from repro.service.faults import plan_from_env
from repro.watermark import WatermarkKeys
from repro.zkrownn import CircuitConfig

CHAOS_SEEDS = [
    int(s) for s in os.environ.get("ZKROWNN_CHAOS_SEEDS", "0,1,2").split(",")
    if s.strip()
]

_SUMMARY_RUNS = []


@pytest.fixture(params=CHAOS_SEEDS, ids=lambda s: f"seed{s}")
def chaos_seed(request):
    return request.param


@pytest.fixture(scope="session", autouse=True)
def chaos_summary_artifact():
    """Write per-plan injection counts to ZKROWNN_CHAOS_SUMMARY (CI)."""
    yield
    target = os.environ.get("ZKROWNN_CHAOS_SUMMARY", "")
    if target and _SUMMARY_RUNS:
        Path(target).write_text(json.dumps(
            {"seeds": CHAOS_SEEDS, "runs": _SUMMARY_RUNS},
            indent=2, sort_keys=True,
        ))


def _record_summary(test, plan):
    _SUMMARY_RUNS.append({"test": test, **plan.summary()})


def _tiny_request(seed=0):
    """A decodable claim request whose watermark will NOT extract --
    fault-handling decisions are what is under test, not proving."""
    rng = np.random.default_rng(seed)
    model = Sequential(
        [Dense(6, 5, rng=rng), ReLU(), Dense(5, 4, rng=rng), Sigmoid()],
        name="chaos-test-mlp",
    )
    keys = WatermarkKeys(
        embed_layer=1,
        target_class=2,
        trigger_inputs=rng.normal(size=(3, 6)),
        projection=rng.normal(size=(5, 8)),
        signature=(rng.random(8) < 0.5).astype(np.int64),
    )
    return wire.ClaimRequest(model=model, keys=keys, seed=seed)


def _chain_synthesizer(depth=8, x=3):
    """A tiny generic circuit that proves fast (real Groth16, no claim)."""
    def synthesize(b):
        out = b.public_output("y")
        w = b.private_input("x", x)
        acc = w
        for _ in range(depth):
            acc = b.mul(acc, w)
        b.bind_output(out, acc + 1)

    return synthesize


def _chain_task(claim_id, shape="chaos-chain-8", seed=None):
    return ProofTask(
        claim_id=claim_id,
        shape_key=shape,
        synthesize=_chain_synthesizer(),
        seed=seed,
        require_valid=False,
    )


def _noop_sleep(_seconds):
    pass


# -- the harness itself --------------------------------------------------------


class TestFaultPlanDeterminism:
    def _drive(self, plan, calls=60):
        """Exercise a plan with a fixed call pattern; return its events."""
        sites = ["registry.write", "scheduler.dispatch", "http.request"]
        for i in range(calls):
            try:
                plan.fire(sites[i % len(sites)])
            except Exception:  # noqa: BLE001 - injected, by design
                pass
            plan.mutate("wire.decode", b"some frame bytes for damage")
        return list(plan.events)

    def test_same_seed_replays_identically(self, chaos_seed):
        specs = [
            FaultSpec(site="registry.*", kind="error", probability=0.3),
            FaultSpec(site="scheduler.dispatch", kind="crash",
                      probability=0.2),
            FaultSpec(site="wire.decode", kind="corrupt", probability=0.25),
        ]
        first = self._drive(FaultPlan(seed=chaos_seed, specs=specs))
        second = self._drive(FaultPlan(seed=chaos_seed, specs=specs))
        assert first == second
        assert FaultPlan(seed=chaos_seed + 1000, specs=specs)

    def test_bitflip_is_deterministic_and_single_bit(self):
        data = bytes(range(64))
        plan_a = FaultPlan(seed=7, specs=[
            FaultSpec(site="wire.decode", kind="corrupt", mode="bitflip")
        ])
        plan_b = FaultPlan(seed=7, specs=[
            FaultSpec(site="wire.decode", kind="corrupt", mode="bitflip")
        ])
        mutated = plan_a.mutate("wire.decode", data)
        assert mutated == plan_b.mutate("wire.decode", data)
        assert mutated != data
        assert len(mutated) == len(data)
        diff = [a ^ b for a, b in zip(mutated, data) if a != b]
        assert len(diff) == 1 and bin(diff[0]).count("1") == 1

    def test_truncate_shortens(self):
        plan = FaultPlan(seed=3, specs=[
            FaultSpec(site="wire.decode", kind="corrupt", mode="truncate")
        ])
        data = bytes(40)
        mutated = plan.mutate("wire.decode", data)
        assert 0 < len(mutated) < len(data)

    def test_after_calls_and_max_fires(self):
        plan = FaultPlan(seed=0, specs=[
            FaultSpec(site="s", kind="error", after_calls=2, max_fires=2)
        ])
        outcomes = []
        for _ in range(6):
            try:
                plan.fire("s")
                outcomes.append("ok")
            except OSError:
                outcomes.append("err")
        assert outcomes == ["ok", "ok", "err", "err", "ok", "ok"]

    def test_probability_zero_never_fires(self):
        plan = FaultPlan(seed=0, specs=[
            FaultSpec(site="s", kind="crash", probability=0.0)
        ])
        for _ in range(200):
            plan.fire("s")
        assert plan.fired() == 0

    def test_site_prefix_matching(self):
        spec = FaultSpec(site="registry.*", kind="latency")
        assert spec.matches("registry.write")
        assert spec.matches("registry.crash-before-persist")
        assert not spec.matches("scheduler.dispatch")

    def test_json_roundtrip_and_env_file(self, tmp_path):
        plan = FaultPlan(seed=11, specs=[
            FaultSpec(site="http.request", kind="reset", probability=0.5)
        ])
        restored = FaultPlan.from_json(plan.to_json())
        assert restored.seed == 11
        assert restored.specs == plan.specs
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        from_file = plan_from_env(f"@{path}")
        assert from_file.specs == plan.specs
        assert plan_from_env("") is None
        inline = plan_from_env(plan.to_json())
        assert inline.seed == 11


# -- no lost claims: submit / crash / restart ----------------------------------


class TestSubmitCrashRestart:
    """The satellite-3 matrix: submissions keep crashing mid-persist; every
    ACKed claim must survive a restart, prove exactly once, never tear."""

    def test_no_acked_claim_is_lost(self, tmp_path, chaos_seed):
        root = tmp_path / "reg"
        plan = FaultPlan(seed=chaos_seed, specs=[
            FaultSpec(site="registry.crash-before-persist", kind="crash",
                      probability=0.2),
            FaultSpec(site="registry.crash-after-persist", kind="crash",
                      probability=0.2),
        ])

        def submit_until_acked(frame):
            # Each crash abandons the service object (the process "died")
            # and the client retries the idempotent frame against a fresh
            # incarnation, exactly like the HTTP retry path.
            for _ in range(30):
                service = ProofService(ClaimRegistry(root, faults=plan))
                try:
                    return service.submit(frame)["claim_id"]
                except SimulatedCrash:
                    continue
            raise AssertionError(
                f"no ack after 30 incarnations (seed {chaos_seed})"
            )

        frames = [
            wire.encode_claim_request(_tiny_request(seed=i)) for i in range(5)
        ]
        acked = [submit_until_acked(frame) for frame in frames]
        assert len(set(acked)) == len(acked)
        _record_summary("submit_crash_restart", plan)

        # A clean restart must recover every ACKed claim -- none lost,
        # none torn -- and drive each to a terminal state exactly once.
        final = ProofService(ClaimRegistry(root))
        try:
            final.start()
            assert sorted(final.recovered_claims) == sorted(acked)
            for claim_id in acked:
                state = final.scheduler.wait(claim_id, timeout=120)
                assert state in (JobState.DONE, JobState.FAILED)
            dispatched = final.scheduler.processed_order
            assert sorted(dispatched) == sorted(acked)  # once each
        finally:
            final.close()

    def test_crashed_submit_leaves_no_torn_record(self, tmp_path, chaos_seed):
        root = tmp_path / "reg"
        plan = FaultPlan(seed=chaos_seed, specs=[
            FaultSpec(site="registry.crash-before-persist", kind="crash",
                      max_fires=1),
        ])
        service = ProofService(ClaimRegistry(root, faults=plan))
        frame = wire.encode_claim_request(_tiny_request(seed=chaos_seed))
        with pytest.raises(SimulatedCrash):
            service.submit(frame)
        # Whatever the crash interrupted, every record a fresh registry
        # can see must be completely readable (atomic writes never tear).
        survivor = ClaimRegistry(root)
        for record in survivor.list():
            assert record.claim_id
            assert record.state in (JobState.QUEUED,)
        # And the client's retry against a clean replica just works.
        clean = ProofService(ClaimRegistry(root))
        result = clean.submit(frame)
        assert result["state"] == JobState.QUEUED
        _record_summary("torn_record_check", plan)

    def test_flaky_blob_reads_surface_as_retryable_500s(
        self, tmp_path, chaos_seed
    ):
        """A transient registry read error becomes a 500 the resilient
        client retries through -- never a corrupted or empty payload."""
        plan = FaultPlan(seed=chaos_seed, specs=[
            FaultSpec(site="registry.read", kind="error", error="OSError",
                      probability=0.4),
        ])
        registry = ClaimRegistry(tmp_path / "reg", faults=plan)
        digest = "ab" * 32
        vk_payload = b"opaque vk bytes for the read-fault path"
        registry.store_verifying_key(digest, vk_payload)
        server = ProofServer(
            ProofService(registry)
        ).start(start_service=False)
        try:
            client = ServiceClient(
                server.url,
                retry=RetryPolicy(max_attempts=8, base_delay=0.0, jitter=0.0),
                sleep=_noop_sleep,
                jitter_seed=chaos_seed,
            )
            fetches = 0
            while plan.fired("registry.read") == 0 or fetches < 10:
                frame = client._request("GET", f"/vks/{digest}")
                _, payload = wire.decode_frame(frame)
                assert payload == vk_payload
                fetches += 1
                assert fetches < 60, "plan never fired a read fault"
        finally:
            server.stop()
        _record_summary("flaky_reads", plan)


# -- retry, quarantine, watchdog, budget ---------------------------------------


class TestRetryAndQuarantine:
    def test_transient_batch_failures_retry_then_succeed(self, tmp_path):
        plan = FaultPlan(seed=0, specs=[
            FaultSpec(site="scheduler.dispatch", kind="error",
                      error="RuntimeError", max_fires=2,
                      message="backend hiccup"),
        ])
        registry = ClaimRegistry(tmp_path)
        registry.register(ClaimRecord(claim_id="c1", model_digest="m" * 64))
        sched = ProofScheduler(
            ProvingEngine(), registry, max_attempts=3, faults=plan
        )
        try:
            sched.submit(_chain_task("c1"))
            sched.start()
            assert sched.wait("c1", timeout=60) == JobState.DONE
            assert sched.stats.retried == 2
            assert sched.stats.quarantined == 0
            record = registry.get("c1")
            assert record.state == JobState.DONE
            assert record.attempts == 2
            assert len(record.error_chain) == 2
            assert "backend hiccup" in record.error_chain[0]
        finally:
            sched.stop()
        _record_summary("retry_then_succeed", plan)

    def test_persistent_failure_quarantines_with_error_chain(self, tmp_path):
        plan = FaultPlan(seed=0, specs=[
            FaultSpec(site="scheduler.dispatch", kind="error",
                      error="RuntimeError", message="backend is gone"),
        ])
        registry = ClaimRegistry(tmp_path)
        registry.register(ClaimRecord(claim_id="p1", model_digest="m" * 64))
        sched = ProofScheduler(
            ProvingEngine(), registry, max_attempts=2, faults=plan
        )
        try:
            sched.submit(_chain_task("p1"))
            sched.start()
            assert sched.wait("p1", timeout=60) == JobState.QUARANTINED
            assert sched.stats.quarantined == 1
            assert sched.stats.retried == 1
            record = registry.get("p1")
            assert record.state == JobState.QUARANTINED
            assert record.attempts == 2
            assert [e.split(":")[0] for e in record.error_chain] == [
                "attempt 1", "attempt 2",
            ]
            events = [e["event"] for e in registry.audit_entries("p1")]
            assert "quarantined" in events
        finally:
            sched.stop()

    def test_resubmission_requeues_a_quarantined_claim(self, tmp_path):
        root = tmp_path / "reg"
        frame = wire.encode_claim_request(_tiny_request(seed=4))
        plan = FaultPlan(seed=0, specs=[
            FaultSpec(site="scheduler.dispatch", kind="error",
                      error="RuntimeError"),
        ])
        poisoned = ProofService(
            ClaimRegistry(root), max_attempts=2, faults=plan
        )
        try:
            poisoned.scheduler.start()
            claim_id = poisoned.submit(frame)["claim_id"]
            assert poisoned.scheduler.wait(
                claim_id, timeout=60
            ) == JobState.QUARANTINED
            # Quarantine keeps the request frame for exactly this moment.
            assert poisoned.registry.request_bytes(claim_id)
        finally:
            poisoned.close()

        healthy = ProofService(ClaimRegistry(root))
        try:
            again = healthy.submit(frame)
            assert again["claim_id"] == claim_id
            assert again["state"] == JobState.QUEUED
            record = healthy.registry.get(claim_id)
            assert record.attempts == 0  # fresh attempt budget
            assert record.error_chain  # post-mortem preserved
            healthy.scheduler.start()
            # This model's watermark never extracts: failed, not poisoned.
            assert healthy.scheduler.wait(
                claim_id, timeout=120
            ) == JobState.FAILED
        finally:
            healthy.close()

    def test_mirror_survives_transient_registry_write_errors(self, tmp_path):
        """A proved claim must not be stranded 'proving' because the DONE
        mirror hit one flaky write."""
        # max_fires bounds total injections, so with max_attempts above
        # it the final outcome is GUARANTEED done, not probabilistic.
        plan = FaultPlan(seed=1, specs=[
            FaultSpec(site="registry.write", kind="error", error="OSError",
                      probability=0.5, max_fires=3),
        ])
        ClaimRegistry(tmp_path).register(
            ClaimRecord(claim_id="f1", model_digest="m" * 64)
        )
        registry = ClaimRegistry(tmp_path, faults=plan)
        sched = ProofScheduler(
            ProvingEngine(), registry, max_attempts=5, faults=None
        )
        try:
            sched.submit(_chain_task("f1"))
            sched.start()
            assert sched.wait("f1", timeout=60) == JobState.DONE
            assert ClaimRegistry(tmp_path).get("f1").state == JobState.DONE
        finally:
            sched.stop()
        _record_summary("mirror_retry", plan)


class TestWatchdogAndBudget:
    def test_engine_budget_raises_between_pulls(self):
        engine = ProvingEngine()
        compiled, synthesis = engine.synthesize(
            "chaos-budget-chain", _chain_synthesizer(), name="chaos-chain"
        )
        with pytest.raises(ProveBudgetExceeded):
            engine.prove_stream(
                compiled, [(synthesis, None)], budget_seconds=0.0
            )
        assert engine.stats.budget_exceeded == 1

    def test_scheduler_quarantines_a_budget_blown_batch(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        for cid in ("b1", "b2"):
            registry.register(ClaimRecord(claim_id=cid, model_digest="m" * 64))
        sched = ProofScheduler(
            ProvingEngine(), registry, prove_budget_seconds=0.0
        )
        try:
            sched.submit(_chain_task("b1"))
            sched.submit(_chain_task("b2"))
            sched.start()
            for cid in ("b1", "b2"):
                assert sched.wait(cid, timeout=60) == JobState.QUARANTINED
                assert "budget" in registry.get(cid).error.lower() or \
                    "watchdog" in registry.get(cid).error.lower()
            assert sched.stats.quarantined == 2
        finally:
            sched.stop()

    def test_watchdog_kills_a_wedged_prove(self, tmp_path):
        # The injected latency wedges the witness stream *inside* the
        # backend's pull -- the case the engine's cooperative budget check
        # cannot reach until far too late.  The watchdog (2x budget) must
        # quarantine the batch while it is stuck, and the limping thread's
        # late DONE must not downgrade the terminal state.
        plan = FaultPlan(seed=0, specs=[
            FaultSpec(site="scheduler.prove", kind="latency",
                      delay_seconds=1.2, max_fires=1),
        ])
        registry = ClaimRegistry(tmp_path)
        for cid in ("w1", "w2"):
            registry.register(ClaimRecord(claim_id=cid, model_digest="m" * 64))
        sched = ProofScheduler(
            ProvingEngine(), registry, prove_budget_seconds=0.15,
            faults=plan, max_batch=2,
        )
        try:
            sched.submit(_chain_task("w1"))
            sched.submit(_chain_task("w2"))
            sched.start()
            states = {
                cid: sched.wait(cid, timeout=60) for cid in ("w1", "w2")
            }
            assert set(states.values()) == {JobState.QUARANTINED}
            assert sched.stats.watchdog_kills >= 1
            time.sleep(1.3)  # let the wedged thread limp to completion
            for cid in ("w1", "w2"):
                assert sched.state(cid) == JobState.QUARANTINED  # no downgrade
                assert registry.get(cid).state == JobState.QUARANTINED
            # The scheduler itself survives: fresh work still proves.
            registry.register(ClaimRecord(claim_id="w3", model_digest="m" * 64))
            sched.submit(_chain_task("w3", shape="chaos-chain-after"))
            assert sched.wait("w3", timeout=60) == JobState.DONE
        finally:
            sched.stop()
        _record_summary("watchdog_kill", plan)


# -- graceful degradation ------------------------------------------------------


class TestGracefulDegradation:
    def test_queue_full_sheds_with_429(self, tmp_path):
        service = ProofService(
            ClaimRegistry(tmp_path), max_queue_depth=2,
            retry_after_seconds=2.0,
        )
        for i in range(2):
            service.submit(wire.encode_claim_request(_tiny_request(seed=i)))
        assert service.health()["status"] == "degraded"
        with pytest.raises(ServiceUnavailable) as excinfo:
            service.submit(wire.encode_claim_request(_tiny_request(seed=9)))
        assert excinfo.value.status == 429
        assert excinfo.value.retry_after == 2.0

    def test_drain_rejects_new_work_and_keeps_queued_claims(self, tmp_path):
        root = tmp_path / "reg"
        server = ProofServer(
            ProofService(ClaimRegistry(root))
        ).start(start_service=False)
        try:
            client = ServiceClient(
                server.url,
                retry=RetryPolicy(max_attempts=2, base_delay=0.0, jitter=0.0),
                sleep=_noop_sleep,
            )
            request = _tiny_request(seed=0)
            submitted = client.submit_claim(request.model, request.keys)
            assert client.health()["status"] == "ok"

            drained = client.drain()
            assert drained["status"] == "draining"
            deadline = time.monotonic() + 10
            while not client.health()["drained"]:
                assert time.monotonic() < deadline, "drain never completed"
                time.sleep(0.05)
            assert client.health()["status"] == "draining"

            with pytest.raises(ServiceError) as excinfo:
                client.submit_claim(_tiny_request(seed=1).model, request.keys)
            assert excinfo.value.status == 503
        finally:
            server.stop()

        # The drained server never lost the queued claim: a successor
        # replica recovers and settles it.
        successor = ProofService(ClaimRegistry(root))
        try:
            successor.start()
            assert successor.recovered_claims == [submitted["claim_id"]]
            assert successor.scheduler.wait(
                submitted["claim_id"], timeout=120
            ) in (JobState.DONE, JobState.FAILED)
        finally:
            successor.close()

    def test_expired_deadline_is_shed_at_dispatch(self, tmp_path):
        service = ProofService(ClaimRegistry(tmp_path))
        try:
            service.start()
            result = service.submit(
                wire.encode_claim_request(_tiny_request(seed=0)),
                deadline_seconds=0.0,
            )
            state = service.scheduler.wait(result["claim_id"], timeout=30)
            assert state == JobState.FAILED
            assert "deadline exceeded" in service.scheduler.error(
                result["claim_id"]
            )
            assert service.scheduler.stats.deadline_shed == 1
        finally:
            service.close()

    def test_deadline_header_rides_http(self, tmp_path):
        server = ProofServer(
            ProofService(ClaimRegistry(tmp_path / "reg"))
        ).start(start_service=False)
        try:
            client = ServiceClient(server.url)
            request = _tiny_request(seed=0)
            submitted = client.submit_claim(
                request.model, request.keys, deadline_seconds=120.0
            )
            # The deadline travels as a header, NOT in the frame: the
            # content address must be deadline-independent.
            plain_id = ServiceClient(server.url).submit_claim(
                request.model, request.keys
            )["claim_id"]
            assert submitted["claim_id"] == plain_id
        finally:
            server.stop()

    def test_corrupted_frame_is_rejected_not_half_registered(self, tmp_path):
        plan = FaultPlan(seed=0, specs=[
            FaultSpec(site="wire.decode", kind="corrupt", mode="bitflip",
                      max_fires=1),
        ])
        server = ProofServer(
            ProofService(ClaimRegistry(tmp_path / "reg"))
        ).start(start_service=False)
        try:
            client = ServiceClient(server.url)
            request = _tiny_request(seed=0)
            with injected(plan):
                with pytest.raises(ServiceError) as excinfo:
                    client.submit_claim(request.model, request.keys)
            assert excinfo.value.status == 400
            assert "wire frame" in str(excinfo.value)
            assert server.service.registry.list() == []  # nothing half-done
            # The flip consumed its one fire: the retry sails through.
            result = client.submit_claim(request.model, request.keys)
            assert result["state"] == JobState.QUEUED
        finally:
            server.stop()
        _record_summary("corrupt_frame", plan)


# -- client resilience ---------------------------------------------------------


class TestCircuitBreaker:
    def test_closed_open_half_open_cycle(self):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=2, reset_seconds=5.0,
            clock=lambda: clock["now"],
        )
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        clock["now"] = 6.0
        assert breaker.state == "half-open"
        assert breaker.allow()      # the single probe
        assert not breaker.allow()  # second request waits on the probe
        breaker.record_success()
        assert breaker.state == "closed" and breaker.allow()

    def test_failed_probe_reopens_for_a_full_window(self):
        clock = {"now": 0.0}
        breaker = CircuitBreaker(
            failure_threshold=1, reset_seconds=5.0,
            clock=lambda: clock["now"],
        )
        breaker.record_failure()
        clock["now"] = 5.5
        assert breaker.allow()
        breaker.record_failure()  # probe failed
        assert breaker.state == "open"
        assert breaker.time_to_half_open() == pytest.approx(5.0)


class TestRetryPolicy:
    def test_delays_grow_and_cap(self):
        import random

        policy = RetryPolicy(base_delay=0.1, max_delay=0.8, multiplier=2.0,
                             jitter=0.0)
        rng = random.Random(0)
        delays = [policy.delay(n, rng) for n in range(1, 7)]
        assert delays == [0.1, 0.2, 0.4, 0.8, 0.8, 0.8]

    def test_jitter_stays_bounded(self):
        import random

        policy = RetryPolicy(base_delay=1.0, max_delay=1.0, jitter=0.25)
        rng = random.Random(1)
        for _ in range(100):
            assert 0.75 <= policy.delay(1, rng) <= 1.25


class TestClientResilience:
    def test_requests_ride_out_injected_resets(self, tmp_path, chaos_seed):
        plan = FaultPlan(seed=chaos_seed, specs=[
            FaultSpec(site="http.request", kind="reset", probability=0.3),
        ])
        server = ProofServer(ProofService(
            ClaimRegistry(tmp_path / "reg"), faults=plan
        )).start(start_service=False)
        try:
            client = ServiceClient(
                server.url,
                retry=RetryPolicy(max_attempts=8, base_delay=0.0, jitter=0.0),
                sleep=_noop_sleep,
                jitter_seed=chaos_seed,
            )
            calls = 0
            while plan.fired("http.request") == 0 or calls < 10:
                assert client.health()["status"] == "ok"
                calls += 1
                assert calls < 60, "plan never fired a reset"
            assert plan.fired("http.request") > 0
        finally:
            server.stop()
        _record_summary("client_resets", plan)

    def test_dead_endpoint_fails_over_and_trips_breaker(self, tmp_path):
        # A bound-then-closed socket yields a port with nothing listening.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        dead_url = f"http://127.0.0.1:{probe.getsockname()[1]}"
        probe.close()

        server = ProofServer(
            ProofService(ClaimRegistry(tmp_path / "reg"))
        ).start(start_service=False)
        try:
            client = ServiceClient(
                [dead_url, server.url],
                breaker_threshold=1,
                retry=RetryPolicy(max_attempts=4, base_delay=0.0, jitter=0.0),
                sleep=_noop_sleep,
            )
            assert client.health()["status"] == "ok"
            assert client.endpoints[0].breaker.state != "closed"
            assert client.base_url == server.url  # traffic moved over
            client.health()  # subsequent requests skip the dead replica
            assert client.endpoints[1].breaker.state == "closed"
        finally:
            server.stop()

    def test_wait_tolerates_transient_errors_midpoll(self, tmp_path,
                                                     chaos_seed):
        """Satellite 1: a transient transport failure mid-poll must not
        abandon a claim the server is still settling."""
        plan = FaultPlan(seed=chaos_seed, specs=[
            FaultSpec(site="http.request", kind="reset", probability=0.4),
        ])
        server = ProofServer(ProofService(
            ClaimRegistry(tmp_path / "reg"), faults=plan
        )).start()
        try:
            client = ServiceClient(
                server.url,
                retry=RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0),
                jitter_seed=chaos_seed,
            )
            request = _tiny_request(seed=chaos_seed)
            submitted = client.submit_claim(request.model, request.keys)
            status = client.wait(
                submitted["claim_id"], timeout=120, poll_seconds=0.05
            )
            assert status["state"] == "failed"  # watermark never extracts
        finally:
            server.stop()
        _record_summary("wait_transient", plan)

    def test_unknown_claim_raises_not_retries_forever(self, tmp_path):
        server = ProofServer(
            ProofService(ClaimRegistry(tmp_path / "reg"))
        ).start(start_service=False)
        try:
            client = ServiceClient(server.url, sleep=_noop_sleep)
            with pytest.raises(ServiceError) as excinfo:
                client.wait("0" * 64, timeout=5, poll_seconds=0.01)
            assert excinfo.value.status == 404
        finally:
            server.stop()


# -- the acceptance path: two replicas, one dies mid-prove ---------------------


class TestTwoReplicaFailover:
    # Replica A's worker thread dying on the injected crash IS the
    # scenario: the unhandled-thread-exception warning is by design.
    @pytest.mark.filterwarnings(
        "ignore::pytest.PytestUnhandledThreadExceptionWarning"
    )
    def test_client_survives_replica_death_mid_prove(
        self, tmp_path, watermarked_mlp
    ):
        """Replica A accepts a real ownership claim and 'dies' as it
        dispatches; the client -- with no manual intervention -- must get
        the claim proved by replica B with bytes identical to an
        uninterrupted direct-engine run."""
        model, keys, _ = watermarked_mlp
        config = CircuitConfig(
            theta=0.0,
            fixed_point=FixedPointFormat(frac_bits=14, total_bits=40),
        )
        root = tmp_path / "registry"

        # Replica A: crashes at its first dispatch, short lease so its
        # death is discoverable quickly, no heartbeat to keep it alive.
        plan_a = FaultPlan(seed=0, specs=[
            FaultSpec(site="scheduler.dispatch", kind="crash", max_fires=1),
        ])
        registry_a = ClaimRegistry(root, owner_token="replica-a")
        engine_a = ProvingEngine(cache_dir=str(root / "engine-cache"))
        service_a = ProofService(
            registry_a,
            engine=engine_a,
            scheduler=ProofScheduler(
                engine_a, registry_a, lease_seconds=0.5,
                heartbeat_seconds=0, faults=plan_a,
            ),
        )
        server_a = ProofServer(service_a).start()

        # Replica B: healthy, same registry root and engine cache.
        registry_b = ClaimRegistry(root, owner_token="replica-b")
        service_b = ProofService(
            registry_b, engine=ProvingEngine(cache_dir=str(root / "engine-cache"))
        )
        server_b = ProofServer(service_b).start()

        try:
            client = ServiceClient(
                [server_a.url, server_b.url],
                breaker_threshold=1,
                breaker_reset_seconds=30.0,
                rescue_after=0.75,
            )
            submitted = client.submit_claim(
                model, keys, config, seed=5, setup_seed=99
            )
            claim_id = submitted["claim_id"]

            # Wait for A's worker to pick the task up and hit the crash:
            # the claim is then stranded 'proving' under A's dying lease.
            deadline = time.monotonic() + 30
            while plan_a.fired("scheduler.dispatch") == 0:
                assert time.monotonic() < deadline, "replica A never dispatched"
                time.sleep(0.02)
            # A's HTTP face goes down too (the process is "dead"); its
            # scheduler thread died in the crash above.
            server_a._httpd.shutdown()
            server_a._httpd.server_close()

            # No manual intervention from here: the client's failover +
            # rescue resubmission must get the claim proved by B.
            status = client.wait(claim_id, timeout=600, poll_seconds=0.1)
            assert status["state"] == "done", status

            # Exactly one prove across the fleet.
            proved_events = [
                e for e in registry_b.audit_entries(claim_id)
                if e["event"] == "proved"
            ]
            assert len(proved_events) == 1

            # Byte-identical to an uninterrupted run.
            from repro.zkrownn import (
                extraction_structure_key,
                extraction_synthesizer,
            )

            direct = ProvingEngine().prove_job(
                extraction_structure_key(model, keys, config),
                extraction_synthesizer(model, keys, config),
                seed=5,
                setup_seed=99,
            )
            claim = client.fetch_claim(claim_id)
            assert direct.proof.to_bytes() == claim.proof_bytes
            assert client.verify_local(claim_id, model).accepted
        finally:
            server_b.stop()
            try:
                service_a.close()
            except Exception:  # noqa: BLE001 - replica A is "dead" anyway
                pass
        _record_summary("two_replica_failover", plan_a)
