"""Tests for the compute-backend subsystem and engine batch proving."""

import os

import pytest

from repro.curves.bn254 import R
from repro.curves.g1 import G1Point, jac_to_affine_many
from repro.curves.msm import naive_msm_g1
from repro.engine import ProvingEngine
from repro.parallel import (
    ComputeBackend,
    ProcessBackend,
    SerialBackend,
    get_backend,
)

G = G1Point.generator()


def _inputs(rng, n):
    points = [
        None if i % 17 == 5 else _affine(G * rng.randrange(1, 4000))
        for i in range(n)
    ]
    scalars = [0 if i % 13 == 3 else rng.randrange(2 * R) for i in range(n)]
    return points, scalars


def _affine(p: G1Point):
    return None if p.is_infinity() else (p.x, p.y)


class TestBackendSelection:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv("ZKROWNN_BACKEND", raising=False)
        assert get_backend().name == "serial"

    def test_env_selects_process(self, monkeypatch):
        monkeypatch.setenv("ZKROWNN_BACKEND", "process")
        monkeypatch.setenv("ZKROWNN_WORKERS", "3")
        backend = get_backend()
        assert isinstance(backend, ProcessBackend)
        assert backend.workers == 3
        backend.close()

    def test_explicit_name_wins_over_env(self, monkeypatch):
        monkeypatch.setenv("ZKROWNN_BACKEND", "process")
        assert get_backend("serial").name == "serial"

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            get_backend("gpu")

    def test_engine_uses_env_backend(self, monkeypatch):
        monkeypatch.setenv("ZKROWNN_BACKEND", "serial")
        engine = ProvingEngine()
        assert engine.backend.name == "serial"


class TestSerialBackend:
    def test_msm_matches_naive(self, rng):
        points, scalars = _inputs(rng, 40)
        got = SerialBackend().msm_g1(points, scalars)
        expected = naive_msm_g1(points, scalars)
        assert jac_to_affine_many([got]) == jac_to_affine_many([expected])


class TestProcessBackend:
    @pytest.fixture(scope="class")
    def backend(self):
        backend = ProcessBackend(2, min_msm_chunk=8)
        yield backend
        backend.close()

    def test_chunked_msm_matches_naive(self, backend, rng):
        points, scalars = _inputs(rng, 64)
        got = backend.msm_g1(points, scalars)
        expected = naive_msm_g1(points, scalars)
        assert jac_to_affine_many([got]) == jac_to_affine_many([expected])

    def test_small_msm_stays_serial(self, rng):
        backend = ProcessBackend(2, min_msm_chunk=10**6)
        try:
            points, scalars = _inputs(rng, 16)
            got = backend.msm_g1(points, scalars)
            expected = naive_msm_g1(points, scalars)
            assert jac_to_affine_many([got]) == jac_to_affine_many([expected])
            assert backend._pool is None  # never spun up
        finally:
            backend.close()

    def test_length_mismatch(self, backend):
        with pytest.raises(ValueError):
            backend.msm_g1([_affine(G)], [1, 2])


def _chain_synthesizer(depth, x=3):
    def synthesize(b):
        out = b.public_output("y")
        w = b.private_input("x", x)
        acc = w
        for _ in range(depth):
            acc = b.mul(acc, w)
        b.bind_output(out, acc + 1)

    return synthesize


class TestProveBatch:
    def test_serial_and_process_proofs_byte_identical(self):
        seeds = [11, 22, 33]
        serial_engine = ProvingEngine(backend=SerialBackend())
        compiled, synthesis = serial_engine.synthesize(
            "chain", _chain_synthesizer(8)
        )
        serial_proofs = serial_engine.prove_batch(
            compiled, [synthesis] * 3, seeds=seeds, setup_seed=5
        )

        backend = ProcessBackend(2)
        process_engine = ProvingEngine(backend=backend)
        compiled_p, synthesis_p = process_engine.synthesize(
            "chain", _chain_synthesizer(8)
        )
        try:
            process_proofs = process_engine.prove_batch(
                compiled_p, [synthesis_p] * 3, seeds=seeds, setup_seed=5
            )
        finally:
            backend.close()

        assert [p.to_bytes() for p in serial_proofs] == [
            p.to_bytes() for p in process_proofs
        ]
        for proof in serial_proofs:
            assert serial_engine.verify(compiled, synthesis.public_values, proof)

    def test_prove_batch_updates_stats(self):
        engine = ProvingEngine(backend=SerialBackend())
        compiled, synthesis = engine.synthesize("chain", _chain_synthesizer(4))
        proofs = engine.prove_batch(
            compiled, [synthesis, synthesis], seeds=[1, 2], setup_seed=3
        )
        assert len(proofs) == 2
        assert engine.stats.proofs == 2
        assert engine.stats.proof_batches == 1

    def test_prove_batch_seed_count_mismatch(self):
        engine = ProvingEngine(backend=SerialBackend())
        compiled, synthesis = engine.synthesize("chain", _chain_synthesizer(4))
        with pytest.raises(ValueError):
            engine.prove_batch(compiled, [synthesis], seeds=[1, 2])

    def test_prove_batch_accepts_raw_assignments(self):
        engine = ProvingEngine(backend=SerialBackend())
        compiled, synthesis = engine.synthesize("chain", _chain_synthesizer(4))
        proofs = engine.prove_batch(
            compiled, [synthesis.assignment], seeds=[7], setup_seed=3
        )
        assert engine.verify(compiled, synthesis.public_values, proofs[0])


class TestStreamingProve:
    """prove_batch with generators: synthesis pipelines with dispatch."""

    def test_generator_matches_sequence_path(self):
        engine = ProvingEngine(backend=SerialBackend())
        compiled, synthesis = engine.synthesize("chain", _chain_synthesizer(6))
        expected = engine.prove_batch(
            compiled, [synthesis] * 3, seeds=[4, 5, 6], setup_seed=9
        )
        streamed = engine.prove_batch(
            compiled,
            (synthesis for _ in range(3)),
            seeds=iter([4, 5, 6]),
            setup_seed=9,
        )
        assert [p.to_bytes() for p in streamed] == [p.to_bytes() for p in expected]

    def test_generator_default_seeds_are_fresh(self):
        engine = ProvingEngine(backend=SerialBackend())
        compiled, synthesis = engine.synthesize("chain", _chain_synthesizer(6))
        proofs = engine.prove_batch(
            compiled, (synthesis for _ in range(2)), setup_seed=9
        )
        assert len(proofs) == 2
        assert proofs[0].to_bytes() != proofs[1].to_bytes()

    def test_stream_is_pulled_lazily(self):
        # The backend must not materialize the whole generator before the
        # first proof: with a serial backend, synthesis i happens only
        # after proof i-1 completed.
        engine = ProvingEngine(backend=SerialBackend())
        compiled, synthesis = engine.synthesize("chain", _chain_synthesizer(6))
        events = []

        def gen():
            for i in range(3):
                events.append(("synth", i))
                yield synthesis, i + 1

        proofs = engine.prove_stream(compiled, gen(), setup_seed=9)
        assert len(proofs) == 3
        assert events == [("synth", 0), ("synth", 1), ("synth", 2)]

    def test_process_stream_matches_serial(self):
        serial_engine = ProvingEngine(backend=SerialBackend())
        compiled, synthesis = serial_engine.synthesize(
            "chain", _chain_synthesizer(8)
        )
        expected = serial_engine.prove_batch(
            compiled, [synthesis] * 3, seeds=[1, 2, 3], setup_seed=5
        )

        backend = ProcessBackend(2)
        engine = ProvingEngine(backend=backend)
        compiled_p, synthesis_p = engine.synthesize("chain", _chain_synthesizer(8))
        try:
            streamed = engine.prove_batch(
                compiled_p,
                (synthesis_p for _ in range(3)),
                seeds=iter([1, 2, 3]),
                setup_seed=5,
            )
        finally:
            backend.close()
        assert [p.to_bytes() for p in streamed] == [p.to_bytes() for p in expected]


class TestPersistentProvePools:
    """ProcessBackend keeps per-digest prove pools warm across batches."""

    def test_pool_survives_across_batches(self):
        backend = ProcessBackend(2)
        engine = ProvingEngine(backend=backend)
        compiled, synthesis = engine.synthesize("chain", _chain_synthesizer(8))
        try:
            engine.prove_batch(compiled, [synthesis] * 2, seeds=[1, 2], setup_seed=5)
            assert backend.prove_pool_keys() == [compiled.digest]
            pool_before = backend._prove_pools[compiled.digest]
            engine.prove_batch(compiled, [synthesis] * 2, seeds=[3, 4], setup_seed=5)
            # Same warm pool object: no re-fork for the second batch.
            assert backend._prove_pools[compiled.digest] is pool_before
            assert backend.prove_pool_keys() == [compiled.digest]
        finally:
            backend.close()
        assert backend.prove_pool_keys() == []

    def test_lru_eviction_bounds_pools(self):
        backend = ProcessBackend(2, max_prove_pools=1)
        engine = ProvingEngine(backend=backend)
        try:
            digests = []
            for depth in (6, 7):
                compiled, synthesis = engine.synthesize(
                    f"chain-{depth}", _chain_synthesizer(depth)
                )
                engine.prove_batch(
                    compiled, [synthesis] * 2, seeds=[1, 2], setup_seed=5
                )
                digests.append(compiled.digest)
            # Only the most recent digest's pool is warm.
            assert backend.prove_pool_keys() == [digests[-1]]
        finally:
            backend.close()

    def test_anonymous_key_uses_ephemeral_pool(self):
        from repro.snark.groth16 import prepare_proving_key

        backend = ProcessBackend(2)
        engine = ProvingEngine(backend=SerialBackend())
        compiled, synthesis = engine.synthesize("chain", _chain_synthesizer(8))
        keypair = engine.setup(compiled, seed=5)
        ppk = prepare_proving_key(keypair.proving_key)
        try:
            proofs = backend.prove_batch(
                ppk, compiled.cs, [synthesis.assignment] * 2, [7, 8]
            )
            assert backend.prove_pool_keys() == []  # nothing cached
            expected = SerialBackend().prove_batch(
                ppk, compiled.cs, [synthesis.assignment] * 2, [7, 8]
            )
            assert [p.to_bytes() for p in proofs] == [
                p.to_bytes() for p in expected
            ]
        finally:
            backend.close()


class TestStreamSeedExhaustion:
    def test_short_seed_iterable_raises_instead_of_truncating(self):
        engine = ProvingEngine(backend=SerialBackend())
        compiled, synthesis = engine.synthesize("chain", _chain_synthesizer(6))
        with pytest.raises(ValueError, match="ran short"):
            engine.prove_batch(
                compiled,
                (synthesis for _ in range(3)),
                seeds=iter([1, 2]),
                setup_seed=9,
            )


class TestConcurrentProvePools:
    def test_busy_pool_is_not_evicted_under_cap_pressure(self):
        import threading

        backend = ProcessBackend(2, max_prove_pools=1)
        engine = ProvingEngine(backend=backend)
        shapes = {}
        for depth in (6, 9):
            shapes[depth] = engine.synthesize(
                f"chain-{depth}", _chain_synthesizer(depth)
            )
        results = {}

        def run(depth):
            compiled, synthesis = shapes[depth]
            proofs = engine.prove_batch(
                compiled, [synthesis] * 2, seeds=[depth, depth + 1],
                setup_seed=5,
            )
            results[depth] = all(
                engine.verify(compiled, synthesis.public_values, p)
                for p in proofs
            )

        try:
            threads = [
                threading.Thread(target=run, args=(d,)) for d in (6, 9)
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            # Both concurrent batches completed despite max_prove_pools=1:
            # eviction skipped the busy pool instead of killing it.
            assert results == {6: True, 9: True}
            assert len(backend.prove_pool_keys()) <= 2
        finally:
            backend.close()
