"""Tests for the Algorithm-1 extraction circuit."""

import copy

import numpy as np
import pytest

from repro.circuit import FixedPointFormat
from repro.watermark import extract_watermark
from repro.zkrownn import (
    CircuitConfig,
    build_extraction_circuit,
    public_inputs_for,
)

FMT = FixedPointFormat(frac_bits=14, total_bits=40)


@pytest.fixture(scope="module")
def mlp_circuit(watermarked_mlp):
    model, keys, _ = watermarked_mlp
    config = CircuitConfig(theta=0.0, fixed_point=FMT)
    return build_extraction_circuit(model, keys, config), model, keys, config


class TestCircuitCorrectness:
    def test_witness_satisfies_constraints(self, mlp_circuit):
        circuit, *_ = mlp_circuit
        circuit.builder.check()

    def test_valid_output_for_watermarked_model(self, mlp_circuit):
        circuit, *_ = mlp_circuit
        assert circuit.valid

    def test_extracted_bits_match_float_extraction(self, mlp_circuit):
        circuit, model, keys, _ = mlp_circuit
        float_result = extract_watermark(model, keys)
        assert circuit.extracted_bits == list(float_result.extracted_bits)

    def test_invalid_for_unrelated_model(self, watermarked_mlp):
        from repro.nn import mnist_mlp_scaled

        _, keys, _ = watermarked_mlp
        fresh = mnist_mlp_scaled(input_dim=16, hidden=16,
                                 rng=np.random.default_rng(321))
        config = CircuitConfig(theta=0.0, fixed_point=FMT)
        circuit = build_extraction_circuit(fresh, keys, config)
        assert not circuit.valid
        circuit.builder.check()  # still a consistent witness (output = 0)

    def test_theta_one_always_valid(self, watermarked_mlp):
        from repro.nn import mnist_mlp_scaled

        _, keys, _ = watermarked_mlp
        fresh = mnist_mlp_scaled(input_dim=16, hidden=16,
                                 rng=np.random.default_rng(321))
        config = CircuitConfig(theta=1.0, fixed_point=FMT)
        assert build_extraction_circuit(fresh, keys, config).valid


class TestPublicLayout:
    def test_public_inputs_match_independent_derivation(self, mlp_circuit):
        circuit, model, keys, config = mlp_circuit
        derived = public_inputs_for(
            model, config.theta, keys.num_bits, keys.embed_layer, config
        )
        assert circuit.public_inputs == derived

    def test_weight_count(self, mlp_circuit):
        circuit, model, keys, _ = mlp_circuit
        # Layers 0..1 = Dense(16->16) + ReLU: W 256 + b 16.
        assert circuit.num_weights == 16 * 16 + 16

    def test_instance_size(self, mlp_circuit):
        circuit, *_ = mlp_circuit
        # valid bit + weights + BER budget.
        assert circuit.constraint_system.num_public == 1 + circuit.num_weights + 1

    def test_different_model_different_instance(self, mlp_circuit, watermarked_mlp):
        circuit, model, keys, config = mlp_circuit
        perturbed = model.copy()
        perturbed.layers[0].params["W"][0, 0] += 1.0
        derived = public_inputs_for(
            perturbed, config.theta, keys.num_bits, keys.embed_layer, config
        )
        assert derived != circuit.public_inputs


class TestStructureReuse:
    def test_same_shape_same_structure(self, watermarked_mlp):
        """Different key values, same shapes -> identical circuit structure
        (the property that lets one Groth16 setup serve many proofs)."""
        model, keys, _ = watermarked_mlp
        config = CircuitConfig(theta=0.0, fixed_point=FMT)
        c1 = build_extraction_circuit(model, keys, config)

        other_keys = copy.deepcopy(keys)
        other_keys.projection = np.random.default_rng(5).standard_normal(
            keys.projection.shape
        )
        config2 = CircuitConfig(theta=1.0, fixed_point=FMT)  # budget is an input
        c2 = build_extraction_circuit(model, other_keys, config2)
        assert (
            c1.builder.structure_digest() == c2.builder.structure_digest()
        )

    def test_different_wm_width_different_structure(self, watermarked_mlp):
        model, keys, _ = watermarked_mlp
        config = CircuitConfig(theta=0.0, fixed_point=FMT)
        c1 = build_extraction_circuit(model, keys, config)
        wider = copy.deepcopy(keys)
        rng = np.random.default_rng(9)
        wider.projection = rng.standard_normal((keys.feature_dim, 16))
        wider.signature = rng.integers(0, 2, 16).astype(np.int64)
        c2 = build_extraction_circuit(model, wider, config)
        assert c1.builder.structure_digest() != c2.builder.structure_digest()


class TestSigmoidDegreeOption:
    def test_lower_degree_fewer_constraints(self, watermarked_mlp):
        model, keys, _ = watermarked_mlp
        base = CircuitConfig(theta=0.0, fixed_point=FMT, sigmoid_degree=9)
        low = CircuitConfig(theta=0.0, fixed_point=FMT, sigmoid_degree=3)
        c_base = build_extraction_circuit(model, keys, base)
        c_low = build_extraction_circuit(model, keys, low)
        assert (
            c_low.constraint_system.num_constraints
            < c_base.constraint_system.num_constraints
        )


class TestPrivateWeightsMode:
    def test_private_weights_shrink_instance(self, watermarked_mlp):
        """weights_public=False: tiny instance, same constraint count order.

        (The paper's setting has them public; the private mode exists for
        the VK-size ablation.)"""
        model, keys, _ = watermarked_mlp
        pub = build_extraction_circuit(
            model, keys, CircuitConfig(theta=0.0, fixed_point=FMT)
        )
        priv = build_extraction_circuit(
            model, keys,
            CircuitConfig(theta=0.0, fixed_point=FMT, weights_public=False),
        )
        assert priv.constraint_system.num_public == 2  # valid + budget
        assert pub.constraint_system.num_public > 200
        assert priv.valid
