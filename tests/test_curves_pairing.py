"""Tests for the Ate pairings: bilinearity, non-degeneracy, product checks.

These are the load-bearing tests of the whole SNARK stack: Groth16
soundness rests on the pairing being a correct bilinear map.
"""

import pytest

from repro.curves.bn254 import R
from repro.curves.g1 import G1Point
from repro.curves.g2 import G2Point
from repro.curves.pairing import (
    final_exponentiation,
    miller_loop,
    multi_pairing,
    pairing,
    pairing_check,
)
from repro.field.tower import Fp12Element

G = G1Point.generator()
H = G2Point.generator()


@pytest.fixture(scope="module")
def e_gh():
    return pairing(G, H)


class TestNonDegeneracy:
    def test_generator_pairing_nontrivial(self, e_gh):
        assert not e_gh.is_one()

    def test_pairing_value_has_order_r(self, e_gh):
        assert e_gh.pow(R).is_one()

    def test_infinity_left(self):
        assert pairing(G1Point.infinity(), H).is_one()

    def test_infinity_right(self):
        assert pairing(G, G2Point.infinity()).is_one()


class TestBilinearity:
    @pytest.mark.parametrize("a,b", [(2, 3), (7, 11), (123456789, 987654321)])
    def test_optimal_ate(self, e_gh, a, b):
        assert pairing(G * a, H * b) == e_gh.pow(a * b % R)

    def test_plain_ate(self):
        e = pairing(G, H, variant="ate")
        assert pairing(G * 6, H * 5, variant="ate") == e.pow(30)

    def test_left_linearity(self, e_gh):
        assert pairing(G * 4, H) == e_gh.pow(4)

    def test_right_linearity(self, e_gh):
        assert pairing(G, H * 9) == e_gh.pow(9)

    def test_negation(self, e_gh):
        assert pairing(-G, H) == e_gh.inverse()

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            pairing(G, H, variant="tate")


class TestMultiPairing:
    def test_product_of_inverse_pairs_is_one(self):
        assert multi_pairing([(G * 7, H * 3), (-(G * 21), H)]).is_one()

    def test_matches_individual_product(self, e_gh):
        product = multi_pairing([(G * 2, H), (G, H * 3)])
        assert product == e_gh.pow(5)

    def test_empty_product_is_one(self):
        assert multi_pairing([]).is_one()

    def test_skips_infinity(self, e_gh):
        product = multi_pairing([(G1Point.infinity(), H), (G, H)])
        assert product == e_gh

    def test_pairing_check_true(self):
        assert pairing_check([(G * 5, H * 2), (-(G * 10), H)])

    def test_pairing_check_false(self):
        assert not pairing_check([(G * 5, H * 2), (-(G * 11), H)])

    def test_unknown_variant_rejected(self):
        with pytest.raises(ValueError):
            multi_pairing([(G, H)], variant="weil")


class TestFinalExponentiation:
    def test_output_in_cyclotomic_subgroup(self):
        # After final exponentiation, conjugate == inverse.
        f = pairing(G * 3, H * 4)
        assert f.conjugate() == f.inverse()

    def test_zero_rejected(self):
        with pytest.raises(ZeroDivisionError):
            final_exponentiation(Fp12Element.zero())

    def test_one_maps_to_one(self):
        assert final_exponentiation(Fp12Element.one()).is_one()


class TestMillerLoop:
    def test_infinity_returns_one(self):
        from repro.curves.bn254 import OPTIMAL_ATE_LOOP_COUNT

        assert miller_loop(
            G1Point.infinity(), H, OPTIMAL_ATE_LOOP_COUNT
        ).is_one()

    def test_raw_miller_value_not_reduced(self):
        # Before final exponentiation the Miller value is generally != the
        # reduced pairing (sanity check that final exp matters).
        from repro.curves.bn254 import OPTIMAL_ATE_LOOP_COUNT

        raw = miller_loop(G, H, OPTIMAL_ATE_LOOP_COUNT, optimal_corrections=True)
        assert raw != pairing(G, H)


class TestVariantsAgree:
    def test_both_variants_give_order_r_values(self):
        for variant in ("optimal", "ate"):
            value = pairing(G * 2, H * 2, variant=variant)
            assert value.pow(R).is_one()
            assert not value.is_one()
