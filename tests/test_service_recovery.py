"""Crash-safety tests: restart recovery, lease reclamation, VK-by-digest.

The acceptance path of the durability work: a server killed with queued
claims must resume proving after a restart -- with no resubmission and
proof bytes identical to an uninterrupted run -- and a restarted service
re-proving a known shape must perform zero fresh Groth16 setups (the
engine's disk cache and the registry share a root).  The cheap tests at
the top drive :meth:`ProofService.start` recovery decisions directly
with tiny synthetic requests; the end-of-file e2e uses the session
watermarked MLP over real localhost HTTP.
"""

import time

import numpy as np
import pytest

from repro.circuit import FixedPointFormat
from repro.engine import ProvingEngine
from repro.nn.layers import Dense, ReLU, Sigmoid
from repro.nn.model import Sequential
from repro.service import (
    ClaimRecord,
    ClaimRegistry,
    FaultPlan,
    FaultSpec,
    JobState,
    ProofServer,
    ProofService,
    ServiceClient,
    SimulatedCrash,
    wire,
)
from repro.watermark import WatermarkKeys
from repro.zkrownn import CircuitConfig, OwnershipVerifier


def _tiny_request(seed=0):
    """A decodable claim request whose watermark will NOT extract --
    recovery decisions are what is under test, not proving."""
    rng = np.random.default_rng(seed)
    model = Sequential(
        [Dense(6, 5, rng=rng), ReLU(), Dense(5, 4, rng=rng), Sigmoid()],
        name="recovery-test-mlp",
    )
    keys = WatermarkKeys(
        embed_layer=1,
        target_class=2,
        trigger_inputs=rng.normal(size=(3, 6)),
        projection=rng.normal(size=(5, 8)),
        signature=(rng.random(8) < 0.5).astype(np.int64),
    )
    return wire.ClaimRequest(model=model, keys=keys, seed=seed)


class TestRecoveryDecisions:
    def test_queued_claims_are_reenqueued_on_start(self, tmp_path):
        root = tmp_path / "reg"
        service1 = ProofService(ClaimRegistry(root))
        # Scheduler never started: the submission stays queued -- the
        # "killed with queued claims" crash shape.
        submitted = service1.submit(
            wire.encode_claim_request(_tiny_request())
        )
        claim_id = submitted["claim_id"]
        assert service1.status(claim_id)["state"] == JobState.QUEUED

        service2 = ProofService(ClaimRegistry(root))
        try:
            service2.start()
            assert service2.recovered_claims == [claim_id]
            # The recovered job runs to a terminal state without any
            # resubmission (this one fails: the watermark never embeds).
            assert service2.scheduler.wait(claim_id, timeout=120) in (
                JobState.DONE, JobState.FAILED,
            )
        finally:
            service2.close()

    def test_expired_proving_lease_is_reclaimed(self, tmp_path):
        root = tmp_path / "reg"
        registry1 = ClaimRegistry(root, owner_token="crashed-replica")
        service1 = ProofService(registry1)
        claim_id = service1.submit(
            wire.encode_claim_request(_tiny_request())
        )["claim_id"]
        # Simulate a crash mid-batch: the record is 'proving' under a
        # lease whose owner died.
        registry1.acquire(claim_id, lease_seconds=0.05)
        registry1.update(claim_id, state=JobState.PROVING)
        time.sleep(0.1)

        service2 = ProofService(ClaimRegistry(root, owner_token="fresh"))
        try:
            service2.start()
            assert service2.recovered_claims == [claim_id]
        finally:
            service2.close()

    def test_live_lease_blocks_recovery(self, tmp_path):
        root = tmp_path / "reg"
        registry1 = ClaimRegistry(root, owner_token="live-replica")
        service1 = ProofService(registry1)
        claim_id = service1.submit(
            wire.encode_claim_request(_tiny_request())
        )["claim_id"]
        registry1.acquire(claim_id)  # default lease: still live
        registry1.update(claim_id, state=JobState.PROVING)

        service2 = ProofService(ClaimRegistry(root, owner_token="fresh"))
        try:
            service2.start()
            # Another replica is proving it right now: hands off.
            assert service2.recovered_claims == []
            assert service2.registry.reload(claim_id).state == JobState.PROVING
        finally:
            service2.close()

    def test_record_without_frame_is_failed_not_stranded(self, tmp_path):
        registry = ClaimRegistry(tmp_path / "reg")
        registry.register(
            ClaimRecord(claim_id="orphan", model_digest="m" * 64)
        )
        service = ProofService(registry)
        try:
            service.start()
            assert service.recovered_claims == []
            record = registry.get("orphan")
            assert record.state == JobState.FAILED
            assert "unrecoverable after restart" in record.error
        finally:
            service.close()


class TestInjectedMidPersistCrashes:
    """Deterministic crashes inside the registry's atomic-write window:
    before ``os.replace`` the old record must survive untouched, after it
    the new record must be what a restarted replica recovers from."""

    def test_crash_before_persist_keeps_the_prior_state(self, tmp_path):
        root = tmp_path / "reg"
        claim_id = ProofService(ClaimRegistry(root)).submit(
            wire.encode_claim_request(_tiny_request())
        )["claim_id"]
        plan = FaultPlan(seed=0, specs=[
            FaultSpec(site="registry.crash-before-persist", kind="crash",
                      max_fires=1),
        ])
        dying = ClaimRegistry(root, faults=plan)
        with pytest.raises(SimulatedCrash):
            dying.update(claim_id, state=JobState.PROVING)
        # The temp file was written but never installed: a reopened
        # registry (ignoring the debris) still reads the old record.
        reopened = ClaimRegistry(root)
        assert reopened.get(claim_id).state == JobState.QUEUED
        service = ProofService(reopened)
        try:
            service.start()
            assert service.recovered_claims == [claim_id]
            assert service.scheduler.wait(claim_id, timeout=120) in (
                JobState.DONE, JobState.FAILED,
            )
        finally:
            service.close()

    def test_crash_after_persist_recovers_from_the_new_state(self, tmp_path):
        root = tmp_path / "reg"
        claim_id = ProofService(ClaimRegistry(root)).submit(
            wire.encode_claim_request(_tiny_request())
        )["claim_id"]
        plan = FaultPlan(seed=0, specs=[
            FaultSpec(site="registry.crash-after-persist", kind="crash",
                      max_fires=1),
        ])
        dying = ClaimRegistry(root, faults=plan)
        with pytest.raises(SimulatedCrash):
            dying.update(claim_id, state=JobState.PROVING)
        # The replace happened: durably 'proving', owner dead, no lease
        # -- the exact shape restart recovery requeues.
        reopened = ClaimRegistry(root)
        assert reopened.get(claim_id).state == JobState.PROVING
        service = ProofService(reopened)
        try:
            service.start()
            assert service.recovered_claims == [claim_id]
            assert service.scheduler.wait(claim_id, timeout=120) in (
                JobState.DONE, JobState.FAILED,
            )
        finally:
            service.close()


class TestRestartEndToEnd:
    """Kill a server holding queued claims; the restarted server must
    prove them unprompted, byte-identically, and -- once the shape's
    setup is on disk -- with zero fresh Groth16 setups."""

    def test_restart_recovers_queued_claims_and_setup_cache(
        self, tmp_path, watermarked_mlp
    ):
        model, keys, _ = watermarked_mlp
        config = CircuitConfig(
            theta=0.0, fixed_point=FixedPointFormat(frac_bits=14, total_bits=40)
        )
        root = tmp_path / "registry"

        # -- phase 1: accept claims, die before proving any ---------------
        server1 = ProofServer(
            ProofService(ClaimRegistry(root))
        ).start(start_service=False)  # HTTP up, scheduler never started
        client = ServiceClient(server1.url)
        first = client.submit_claim(model, keys, config, seed=5, setup_seed=99)
        second = client.submit_claim(model, keys, config, seed=6, setup_seed=99)
        assert client.health()["queue_depth"] == 2
        server1.stop()  # the "kill": both claims still queued on disk

        # -- phase 2: restart; claims prove with NO resubmission ----------
        server2 = ProofServer(ProofService(ClaimRegistry(root))).start()
        try:
            client2 = ServiceClient(server2.url)
            assert client2.health()["recovered_claims"] == 2
            for submitted in (first, second):
                status = client2.wait(submitted["claim_id"], timeout=300)
                assert status["state"] == "done", status

            # Byte-identical to an uninterrupted run (same seeds through
            # the direct engine path).
            from repro.zkrownn import (
                extraction_structure_key,
                extraction_synthesizer,
            )

            direct = ProvingEngine().prove_job(
                extraction_structure_key(model, keys, config),
                extraction_synthesizer(model, keys, config),
                seed=5,
                setup_seed=99,
            )
            claim = client2.fetch_claim(first["claim_id"])
            assert direct.proof.to_bytes() == claim.proof_bytes

            stats2 = client2.stats()
            assert stats2["engine"]["setup_misses"] == 1  # cold disk cache
            assert stats2["scheduler"]["done"] == 2

            # -- VK distribution by circuit digest + key transparency ----
            digest = client2.status(first["claim_id"])["circuit_digest"]
            vk = client2.fetch_vk_by_digest(digest)
            assert OwnershipVerifier(vk).verify(model, claim).accepted
            log = client2.key_log()
            assert [e["circuit_digest"] for e in log] == [digest]
            assert ClaimRegistry(root).verify_key_log() == 1
            # Digest-pinned trustless verification via the client.
            assert client2.verify_local(
                first["claim_id"], model, circuit_digest=digest
            ).accepted
        finally:
            server2.stop()

        # -- phase 3: die again with a fresh same-shape claim queued ------
        server3 = ProofServer(
            ProofService(ClaimRegistry(root))
        ).start(start_service=False)
        third = ServiceClient(server3.url).submit_claim(
            model, keys, config, seed=7, setup_seed=99
        )
        server3.stop()

        # -- phase 4: restart; re-prove the known shape, ZERO setups ------
        server4 = ProofServer(ProofService(ClaimRegistry(root))).start()
        try:
            client4 = ServiceClient(server4.url)
            assert client4.wait(third["claim_id"], timeout=300)["state"] == "done"
            stats4 = client4.stats()
            # The engine found the shape's keypair in the shared on-disk
            # cache: no Groth16 setup ran in this process.
            assert stats4["engine"]["setup_misses"] == 0
            assert stats4["engine"]["setup_disk_hits"] >= 1
            assert client4.verify_local(third["claim_id"], model).accepted
            # Re-publication of the same VK must not grow the key log.
            assert len(client4.key_log()) == 1
        finally:
            server4.stop()


class TestStrandedClaimRescue:
    def test_resubmission_rescues_a_stranded_proving_claim(self, tmp_path):
        """A claim stuck in 'proving' under a dead owner's expired lease
        must be re-enqueued by an identical resubmission, not bounced
        with the stale pending state forever."""
        root = tmp_path / "reg"
        frame = wire.encode_claim_request(_tiny_request())
        registry1 = ClaimRegistry(root, owner_token="crashed")
        service1 = ProofService(registry1)
        claim_id = service1.submit(frame)["claim_id"]
        registry1.acquire(claim_id, lease_seconds=0.05)
        registry1.update(claim_id, state=JobState.PROVING)
        time.sleep(0.1)  # the owner "died"; its lease expires

        # A fresh service that did NOT recover it (simulates the restart-
        # within-lease-window case where recovery had to skip it).
        service2 = ProofService(ClaimRegistry(root, owner_token="fresh"))
        try:
            service2.scheduler.start()  # scheduler only: no recovery pass
            result = service2.submit(frame)
            assert result["claim_id"] == claim_id
            assert result["resubmission"] is True
            assert result["state"] == JobState.QUEUED
            assert service2.scheduler.wait(claim_id, timeout=120) in (
                JobState.DONE, JobState.FAILED,
            )
        finally:
            service2.close()

    def test_resubmission_of_a_live_claim_does_not_requeue(self, tmp_path):
        root = tmp_path / "reg"
        frame = wire.encode_claim_request(_tiny_request())
        registry1 = ClaimRegistry(root, owner_token="live-replica")
        service1 = ProofService(registry1)
        claim_id = service1.submit(frame)["claim_id"]
        registry1.acquire(claim_id)  # live lease
        registry1.update(claim_id, state=JobState.PROVING)

        service2 = ProofService(ClaimRegistry(root, owner_token="fresh"))
        try:
            result = service2.submit(frame)
            assert result["resubmission"] is True
            assert result["state"] == JobState.PROVING  # hands off
            assert service2.scheduler.pending() == 0
        finally:
            service2.close()


class TestResubmissionAfterRecovery:
    def test_resubmitting_a_recovered_claim_is_idempotent(self, tmp_path):
        root = tmp_path / "reg"
        frame = wire.encode_claim_request(_tiny_request())
        service1 = ProofService(ClaimRegistry(root))
        claim_id = service1.submit(frame)["claim_id"]

        service2 = ProofService(ClaimRegistry(root))
        try:
            service2.start()
            assert service2.recovered_claims == [claim_id]
            again = service2.submit(frame)
            assert again["claim_id"] == claim_id
            assert again["resubmission"] is True
            service2.scheduler.wait(claim_id, timeout=120)
        finally:
            service2.close()
