"""Tests for DeepSigns embedding and extraction.

Checks the claims the paper inherits from DeepSigns: embedding reaches
BER 0 without accuracy loss; extraction is deterministic; unrelated models
do not carry the watermark.
"""

import numpy as np
import pytest

from repro.watermark import (
    EmbedConfig,
    detect_watermark,
    extract_watermark,
    generate_keys,
)


class TestEmbedding:
    def test_embedding_reaches_zero_ber(self, watermarked_mlp):
        model, keys, _ = watermarked_mlp
        assert extract_watermark(model, keys).ber == 0.0

    def test_accuracy_preserved(self, watermarked_mlp):
        """'ZKROWNN does not result in any lapses in model accuracy' -- the
        embedding (DeepSigns) side must hold this too (within noise)."""
        from repro.nn import evaluate_classifier

        model, keys, data = watermarked_mlp
        acc = evaluate_classifier(model, data.x_test, data.y_test)
        assert acc > 0.25  # well above the 0.1 chance level

    def test_extraction_matches_signature(self, watermarked_mlp):
        model, keys, _ = watermarked_mlp
        result = extract_watermark(model, keys)
        np.testing.assert_array_equal(result.extracted_bits, keys.signature)

    def test_extraction_margins_nontrivial(self, watermarked_mlp):
        model, keys, _ = watermarked_mlp
        result = extract_watermark(model, keys)
        assert np.abs(result.projected - 0.5).min() > 0.05


class TestExtraction:
    def test_deterministic(self, watermarked_mlp):
        model, keys, _ = watermarked_mlp
        r1 = extract_watermark(model, keys)
        r2 = extract_watermark(model, keys)
        np.testing.assert_array_equal(r1.extracted_bits, r2.extracted_bits)
        assert r1.ber == r2.ber

    def test_detect_with_zero_theta(self, watermarked_mlp):
        model, keys, _ = watermarked_mlp
        assert detect_watermark(model, keys, theta=0.0)

    def test_unrelated_model_not_detected(self, watermarked_mlp):
        from repro.nn import mnist_mlp_scaled

        _, keys, _ = watermarked_mlp
        fresh = mnist_mlp_scaled(input_dim=16, hidden=16,
                                 rng=np.random.default_rng(4242))
        result = extract_watermark(fresh, keys)
        assert result.ber > 0.2  # far from a match
        assert not detect_watermark(fresh, keys, theta=0.1)

    def test_wrong_keys_not_detected(self, watermarked_mlp):
        """Another owner's keys must not claim this model."""
        model, keys, data = watermarked_mlp
        impostor = generate_keys(
            model, data.x_train, data.y_train,
            embed_layer=1, wm_bits=8, min_triggers=4,
            rng=np.random.default_rng(777),
        )
        result = extract_watermark(model, impostor)
        assert result.ber > 0.0

    def test_projection_mismatch_raises(self, watermarked_mlp):
        model, keys, _ = watermarked_mlp
        import copy

        bad = copy.deepcopy(keys)
        bad.projection = np.zeros((7, 8))  # wrong feature dim
        with pytest.raises(ValueError):
            extract_watermark(model, bad)

    def test_matches_respects_theta(self, watermarked_mlp):
        model, keys, _ = watermarked_mlp
        result = extract_watermark(model, keys)
        assert result.matches(0.0)
        assert result.matches(0.5)


class TestEmbedReport:
    def test_report_records_histories(self, watermarked_mlp):
        # The session fixture already ran embedding; re-run a short one to
        # check report bookkeeping on a copy.
        from repro.watermark import embed_watermark

        model, keys, data = watermarked_mlp
        clone = model.copy()
        report = embed_watermark(
            clone, keys, data.x_train, data.y_train,
            config=EmbedConfig(epochs=1, seed=0),
        )
        assert len(report.task_loss_history) == 1
        assert len(report.wm_loss_history) >= 1
        assert report.succeeded == (report.ber_after == 0.0)
