"""Tests that cost planning predicts real circuits exactly."""

import numpy as np
import pytest

from repro.circuit import FixedPointFormat
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sequential, Sigmoid
from repro.watermark.keys import WatermarkKeys
from repro.zkrownn import CircuitConfig, build_extraction_circuit
from repro.zkrownn.planning import CircuitCostEstimate, estimate_extraction_cost

FMT = FixedPointFormat(frac_bits=12, total_bits=36)


def _keys(model, input_shape, embed_layer, wm_bits=4, triggers=2, seed=0):
    rng = np.random.default_rng(seed)
    if isinstance(input_shape, int):
        trigger_inputs = rng.uniform(0, 1, (triggers, input_shape))
    else:
        trigger_inputs = rng.uniform(0, 1, (triggers, *input_shape))
    probe = model.forward_to(trigger_inputs[:1], embed_layer)
    feature_dim = int(np.prod(probe.shape[1:]))
    return WatermarkKeys(
        embed_layer=embed_layer,
        target_class=0,
        trigger_inputs=trigger_inputs,
        projection=rng.standard_normal((feature_dim, wm_bits)),
        signature=rng.integers(0, 2, wm_bits).astype(np.int64),
    )


def assert_estimate_exact(model, keys, config):
    circuit = build_extraction_circuit(model, keys, config)
    estimate = estimate_extraction_cost(model, keys, config)
    assert estimate.num_constraints == circuit.constraint_system.num_constraints
    assert estimate.num_public_inputs == circuit.constraint_system.num_public
    return circuit, estimate


class TestFlatModels:
    def test_mlp_first_layer(self):
        rng = np.random.default_rng(1)
        model = Sequential([Dense(10, 8, rng=rng), ReLU(), Dense(8, 4, rng=rng)])
        keys = _keys(model, 10, embed_layer=1)
        assert_estimate_exact(model, keys, CircuitConfig(theta=1.0, fixed_point=FMT))

    def test_mlp_deep_layer(self):
        rng = np.random.default_rng(2)
        model = Sequential(
            [Dense(8, 8, rng=rng), ReLU(), Dense(8, 6, rng=rng), ReLU()]
        )
        keys = _keys(model, 8, embed_layer=3)
        assert_estimate_exact(model, keys, CircuitConfig(theta=1.0, fixed_point=FMT))

    def test_sigmoid_activation(self):
        rng = np.random.default_rng(3)
        model = Sequential([Dense(6, 6, rng=rng), Sigmoid()])
        keys = _keys(model, 6, embed_layer=1)
        assert_estimate_exact(model, keys, CircuitConfig(theta=1.0, fixed_point=FMT))

    def test_more_triggers_and_bits(self):
        rng = np.random.default_rng(4)
        model = Sequential([Dense(8, 8, rng=rng), ReLU()])
        keys = _keys(model, 8, embed_layer=1, wm_bits=8, triggers=5)
        assert_estimate_exact(model, keys, CircuitConfig(theta=0.5, fixed_point=FMT))


class TestSpatialModels:
    def test_cnn_first_conv(self):
        rng = np.random.default_rng(5)
        model = Sequential([Conv2D(2, 3, kernel=3, stride=2, rng=rng), ReLU()])
        keys = _keys(model, (2, 7, 7), embed_layer=1)
        assert_estimate_exact(model, keys, CircuitConfig(theta=1.0, fixed_point=FMT))

    def test_cnn_through_pool_and_dense(self):
        rng = np.random.default_rng(6)
        model = Sequential(
            [
                Conv2D(1, 2, kernel=2, stride=1, rng=rng),
                ReLU(),
                MaxPool2D(2, 1),
                Flatten(),
                Dense(2 * 3 * 3, 4, rng=rng),
                ReLU(),
            ]
        )
        keys = _keys(model, (1, 5, 5), embed_layer=5)
        assert_estimate_exact(model, keys, CircuitConfig(theta=1.0, fixed_point=FMT))


class TestEstimateProperties:
    def test_private_weights_mode(self):
        rng = np.random.default_rng(7)
        model = Sequential([Dense(6, 4, rng=rng), ReLU()])
        keys = _keys(model, 6, embed_layer=1)
        config = CircuitConfig(theta=1.0, fixed_point=FMT, weights_public=False)
        circuit, estimate = assert_estimate_exact(model, keys, config)
        assert estimate.num_public_inputs == 2
        assert estimate.num_private_weights == 6 * 4 + 4

    def test_vk_size_formula(self, watermarked_mlp):
        """The VK byte estimate matches a real setup's key."""
        from repro.snark import setup

        model, keys, _ = watermarked_mlp
        config = CircuitConfig(
            theta=0.0, fixed_point=FixedPointFormat(frac_bits=14, total_bits=40)
        )
        estimate = estimate_extraction_cost(model, keys, config)
        circuit = build_extraction_circuit(model, keys, config)
        keypair = setup(circuit.constraint_system, seed=3)
        # to_bytes adds a 4-byte length prefix for the IC vector.
        assert keypair.verifying_key.size_bytes() == estimate.estimated_vk_bytes + 4

    def test_proof_size_always_128(self):
        estimate = CircuitCostEstimate(1, 1, 0)
        assert estimate.estimated_proof_bytes == 128

    def test_unsupported_layer_raises(self):
        model = Sequential([Dense(4, 4), MaxPool2D(2, 1)])
        keys = _keys(model, 4, embed_layer=0)
        keys_bad = WatermarkKeys(
            embed_layer=1,
            target_class=0,
            trigger_inputs=np.zeros((1, 4)),
            projection=np.zeros((4, 2)),
            signature=np.zeros(2, dtype=np.int64),
        )
        with pytest.raises(TypeError):
            estimate_extraction_cost(model, keys_bad, CircuitConfig(fixed_point=FMT))
