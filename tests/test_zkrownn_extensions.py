"""Tests for the paper's extension capabilities.

Section III-B.6: "ZKROWNN still works when the watermark is embedded in
deeper layers, at the cost of higher prover complexity."
Section IV-A:   "The DNN benchmarks use ReLU as the activation function,
however we provide the capability of using sigmoid."
"""

import numpy as np
import pytest

from repro.circuit import FixedPointFormat
from repro.nn import Dense, ReLU, Sequential, Sigmoid
from repro.watermark import extract_watermark
from repro.watermark.keys import WatermarkKeys
from repro.zkrownn import CircuitConfig, build_extraction_circuit

FMT = FixedPointFormat(frac_bits=14, total_bits=40)


def _keys_for(model, input_dim, embed_layer, wm_bits=4, triggers=2, seed=0):
    rng = np.random.default_rng(seed)
    trigger_inputs = rng.uniform(0, 1, (triggers, input_dim))
    probe = model.forward_to(trigger_inputs[:1], embed_layer)
    feature_dim = int(np.prod(probe.shape[1:]))
    return WatermarkKeys(
        embed_layer=embed_layer,
        target_class=0,
        trigger_inputs=trigger_inputs,
        projection=rng.standard_normal((feature_dim, wm_bits)),
        signature=rng.integers(0, 2, wm_bits).astype(np.int64),
    )


class TestDeeperEmbedding:
    def _model(self):
        rng = np.random.default_rng(3)
        return Sequential(
            [Dense(8, 8, rng=rng), ReLU(), Dense(8, 8, rng=rng), ReLU(),
             Dense(8, 4, rng=rng)],
        )

    def test_deeper_layer_builds_and_matches_float(self):
        model = self._model()
        keys = _keys_for(model, 8, embed_layer=3)  # after the 2nd ReLU
        config = CircuitConfig(theta=1.0, fixed_point=FMT)
        circuit = build_extraction_circuit(model, keys, config)
        circuit.builder.check()
        float_bits = extract_watermark(model, keys).extracted_bits
        assert circuit.extracted_bits == list(float_bits)

    def test_deeper_layer_costs_more_constraints(self):
        """'at the cost of higher prover complexity'."""
        model = self._model()
        shallow = _keys_for(model, 8, embed_layer=1)
        deep = _keys_for(model, 8, embed_layer=3)
        config = CircuitConfig(theta=1.0, fixed_point=FMT)
        c_shallow = build_extraction_circuit(model, shallow, config)
        c_deep = build_extraction_circuit(model, deep, config)
        assert (
            c_deep.constraint_system.num_constraints
            > c_shallow.constraint_system.num_constraints
        )

    def test_deeper_layer_grows_public_instance(self):
        """More layers public -> more weights in the instance -> larger VK."""
        model = self._model()
        shallow = _keys_for(model, 8, embed_layer=1)
        deep = _keys_for(model, 8, embed_layer=3)
        config = CircuitConfig(theta=1.0, fixed_point=FMT)
        c_shallow = build_extraction_circuit(model, shallow, config)
        c_deep = build_extraction_circuit(model, deep, config)
        assert c_deep.constraint_system.num_public > c_shallow.constraint_system.num_public


class TestSigmoidActivation:
    def _model(self):
        rng = np.random.default_rng(4)
        return Sequential(
            [Dense(6, 6, rng=rng), Sigmoid(), Dense(6, 4, rng=rng)],
        )

    def test_sigmoid_feedforward_builds(self):
        model = self._model()
        keys = _keys_for(model, 6, embed_layer=1)
        config = CircuitConfig(theta=1.0, fixed_point=FMT)
        circuit = build_extraction_circuit(model, keys, config)
        circuit.builder.check()

    def test_sigmoid_activations_approximate_float(self):
        """In-circuit sigmoid activations track the float model closely
        enough for watermark thresholding (Chebyshev approximation)."""
        model = self._model()
        keys = _keys_for(model, 6, embed_layer=1)
        config = CircuitConfig(theta=1.0, fixed_point=FMT)
        circuit = build_extraction_circuit(model, keys, config)
        float_bits = extract_watermark(model, keys).extracted_bits
        # Chebyshev-vs-exact sigmoid may flip bits with tiny margins; at
        # least 3 of 4 must agree on this fixed seed (exact agreement is
        # asserted for the ReLU models elsewhere).
        agreement = sum(
            int(a == b) for a, b in zip(circuit.extracted_bits, float_bits)
        )
        assert agreement >= 3

    def test_unsupported_layer_rejected(self):
        from repro.nn import MaxPool2D

        model = Sequential([Dense(6, 6), MaxPool2D(2, 1)])
        keys = _keys_for(model, 6, embed_layer=0)
        # Embed at layer 0 is fine; embedding past the pool on flat input
        # must raise a clear error.
        config = CircuitConfig(theta=1.0, fixed_point=FMT)
        circuit = build_extraction_circuit(model, keys, config)
        circuit.builder.check()
        bad_keys = WatermarkKeys(
            embed_layer=1,
            target_class=0,
            trigger_inputs=np.random.default_rng(0).uniform(0, 1, (2, 6)),
            projection=np.zeros((6, 4)),
            signature=np.zeros(4, dtype=np.int64),
        )
        with pytest.raises(TypeError, match="unsupported layer"):
            build_extraction_circuit(model, bad_keys, config)
