"""Wire-protocol tests: byte-exact round trips and corruption rejection."""

import numpy as np
import pytest

from repro.circuit import FixedPointFormat
from repro.nn.layers import Conv2D, Dense, Flatten, MaxPool2D, ReLU, Sigmoid
from repro.nn.model import Sequential
from repro.service import wire
from repro.service.wire import WireFormatError
from repro.snark import setup
from repro.snark.keys import Proof
from repro.watermark import WatermarkKeys
from repro.zkrownn import CircuitConfig, OwnershipClaim
from repro.zkrownn.artifacts import ClaimFormatError


def _small_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        [Dense(6, 5, rng=rng), ReLU(), Dense(5, 4, rng=rng), Sigmoid()],
        name="wire-test-mlp",
    )


def _conv_model(seed=0):
    rng = np.random.default_rng(seed)
    return Sequential(
        [
            Conv2D(1, 2, kernel=3, stride=1, rng=rng),
            ReLU(),
            MaxPool2D(2, 2),
            Flatten(),
            Dense(8, 3, rng=rng),
        ],
        name="wire-test-cnn",
    )


def _keys(seed=0):
    rng = np.random.default_rng(seed)
    return WatermarkKeys(
        embed_layer=1,
        target_class=2,
        trigger_inputs=rng.normal(size=(3, 6)),
        projection=rng.normal(size=(5, 8)),
        signature=(rng.random(8) < 0.5).astype(np.int64),
    )


def _claim(seed=0):
    rng = np.random.default_rng(seed)
    return OwnershipClaim(
        proof_bytes=bytes(rng.integers(0, 256, size=128, dtype=np.uint8)),
        theta=0.125,
        wm_bits=8,
        embed_layer=1,
        model_sha256="ab" * 32,
        frac_bits=14,
        total_bits=40,
        sigmoid_degree=9,
    )


class TestFrameLayer:
    def test_round_trip(self):
        frame = wire.encode_frame(wire.MSG_PROOF, b"hello payload")
        msg_type, payload = wire.decode_frame(frame)
        assert msg_type == wire.MSG_PROOF
        assert payload == b"hello payload"

    def test_bad_magic(self):
        frame = bytearray(wire.encode_frame(wire.MSG_PROOF, b"x"))
        frame[0] ^= 0xFF
        with pytest.raises(WireFormatError, match="magic"):
            wire.decode_frame(bytes(frame))

    def test_future_version_rejected(self):
        frame = bytearray(wire.encode_frame(wire.MSG_PROOF, b"x"))
        frame[4] = wire.WIRE_VERSION + 1
        with pytest.raises(WireFormatError, match="version"):
            wire.decode_frame(bytes(frame))

    def test_truncation_rejected(self):
        frame = wire.encode_frame(wire.MSG_PROOF, b"some payload bytes")
        for cut in (0, 4, len(frame) // 2, len(frame) - 1):
            with pytest.raises(WireFormatError):
                wire.decode_frame(frame[:cut])

    def test_trailing_bytes_rejected(self):
        frame = wire.encode_frame(wire.MSG_PROOF, b"payload")
        with pytest.raises(WireFormatError):
            wire.decode_frame(frame + b"\x00")

    def test_every_single_byte_flip_is_rejected(self):
        frame = wire.encode_frame(wire.MSG_CLAIM, b"watermark claim bytes")
        for i in range(len(frame)):
            corrupted = bytearray(frame)
            corrupted[i] ^= 0x01
            with pytest.raises(WireFormatError):
                wire.decode_frame(bytes(corrupted), wire.MSG_CLAIM)

    def test_type_mismatch_rejected(self):
        frame = wire.encode_frame(wire.MSG_PROOF, b"x")
        with pytest.raises(WireFormatError, match="message type"):
            wire.decode_frame(frame, wire.MSG_CLAIM)


class TestModelCodec:
    @pytest.mark.parametrize("factory", [_small_model, _conv_model])
    def test_round_trip_preserves_forward_pass(self, factory):
        model = factory()
        decoded = wire.decode_model(wire.encode_model(model))
        assert decoded.name == model.name
        assert [type(l).__name__ for l in decoded.layers] == [
            type(l).__name__ for l in model.layers
        ]
        if factory is _small_model:
            x = np.random.default_rng(7).normal(size=(2, 6))
        else:
            x = np.random.default_rng(7).normal(size=(2, 1, 6, 6))
        np.testing.assert_array_equal(model.forward(x), decoded.forward(x))

    def test_byte_exact_reencode(self):
        frame = wire.encode_model(_small_model())
        assert wire.encode_model(wire.decode_model(frame)) == frame

    def test_unsupported_layer_rejected(self):
        class Exotic(ReLU):
            pass

        model = Sequential([Exotic()], name="exotic")
        # Subclass still encodes as ReLU is NOT desired -- isinstance would
        # accept it, so pin the behavior: it encodes as its ReLU base.
        decoded = wire.decode_model(wire.encode_model(model))
        assert type(decoded.layers[0]).__name__ == "ReLU"


class TestClaimRequestCodec:
    def test_round_trip(self):
        request = wire.ClaimRequest(
            model=_small_model(),
            keys=_keys(),
            config=CircuitConfig(
                theta=0.25,
                fixed_point=FixedPointFormat(frac_bits=12, total_bits=36),
                sigmoid_degree=7,
                weights_public=False,
            ),
            priority=3,
            seed=1234567890123456789,
            setup_seed=None,
        )
        frame = wire.encode_claim_request(request)
        decoded = wire.decode_claim_request(frame)
        assert decoded.priority == 3
        assert decoded.seed == 1234567890123456789
        assert decoded.setup_seed is None
        assert decoded.config == request.config
        assert decoded.keys.embed_layer == request.keys.embed_layer
        np.testing.assert_array_equal(
            decoded.keys.projection, request.keys.projection
        )
        np.testing.assert_array_equal(
            decoded.keys.signature, request.keys.signature
        )
        # Canonical: re-encoding reproduces the exact frame (the content
        # address the service dedupes on).
        assert wire.encode_claim_request(decoded) == frame

    def test_negative_seed_round_trips(self):
        request = wire.ClaimRequest(
            model=_small_model(), keys=_keys(), seed=-17, setup_seed=0
        )
        decoded = wire.decode_claim_request(wire.encode_claim_request(request))
        assert decoded.seed == -17
        assert decoded.setup_seed == 0

    def test_corrupted_payload_rejected(self):
        frame = bytearray(wire.encode_claim_request(
            wire.ClaimRequest(model=_small_model(), keys=_keys())
        ))
        frame[len(frame) // 2] ^= 0x10
        with pytest.raises(WireFormatError):
            wire.decode_claim_request(bytes(frame))


class TestPersistedRequestCodec:
    """The restart-recovery frame: claim id + full canonical request."""

    def test_round_trip(self):
        request = wire.ClaimRequest(
            model=_small_model(),
            keys=_keys(),
            config=CircuitConfig(
                theta=0.5,
                fixed_point=FixedPointFormat(frac_bits=12, total_bits=36),
            ),
            priority=-2,
            seed=42,
            setup_seed=99,
        )
        claim_id = "ab" * 32
        frame = wire.encode_persisted_request(claim_id, request)
        persisted = wire.decode_persisted_request(frame)
        assert persisted.claim_id == claim_id
        assert persisted.request.priority == -2
        assert persisted.request.seed == 42
        assert persisted.request.setup_seed == 99
        assert persisted.request.config == request.config
        np.testing.assert_array_equal(
            persisted.request.keys.signature, request.keys.signature
        )
        # The inner request must re-encode to the exact canonical frame
        # the claim id was derived from -- recovery re-enqueues the same
        # content-addressed job, not a near-copy.
        assert wire.encode_claim_request(persisted.request) == \
            wire.encode_claim_request(request)
        assert wire.encode_persisted_request(claim_id, persisted.request) == frame

    def test_corruption_rejected(self):
        frame = bytearray(wire.encode_persisted_request(
            "cd" * 32, wire.ClaimRequest(model=_small_model(), keys=_keys())
        ))
        frame[len(frame) // 2] ^= 0x04
        with pytest.raises(WireFormatError):
            wire.decode_persisted_request(bytes(frame))

    def test_wrong_frame_type_rejected(self):
        request_frame = wire.encode_claim_request(
            wire.ClaimRequest(model=_small_model(), keys=_keys())
        )
        with pytest.raises(WireFormatError, match="message type"):
            wire.decode_persisted_request(request_frame)


class TestClaimAndKeyCodecs:
    def test_claim_round_trip_is_byte_exact(self):
        claim = _claim()
        frame = wire.encode_claim(claim)
        decoded = wire.decode_claim(frame)
        assert decoded == claim
        assert wire.encode_claim(decoded) == frame
        assert decoded.content_id() == claim.content_id()

    def test_claim_binary_corruption_rejected(self):
        blob = _claim().to_bytes()
        with pytest.raises(ClaimFormatError):
            OwnershipClaim.from_bytes(blob[:-1])
        with pytest.raises(ClaimFormatError):
            OwnershipClaim.from_bytes(blob + b"\x01")
        with pytest.raises(ClaimFormatError):
            OwnershipClaim.from_bytes(b"")

    def test_claim_rejects_non_hex_digest(self):
        claim = _claim()
        claim.model_sha256 = "zz" * 32
        with pytest.raises(ClaimFormatError):
            claim.to_bytes()

    def test_proof_and_vk_round_trip(self, cubic_circuit, cubic_keypair):
        from repro.snark import prove

        cs, assignment = cubic_circuit
        proof = prove(cubic_keypair.proving_key, cs, assignment, seed=11)
        proof_frame = wire.encode_proof(proof)
        assert wire.decode_proof(proof_frame).to_bytes() == proof.to_bytes()

        vk = cubic_keypair.verifying_key
        vk_frame = wire.encode_verifying_key(vk)
        assert wire.decode_verifying_key(vk_frame).to_bytes() == vk.to_bytes()

    def test_garbage_proof_payload_rejected(self):
        frame = wire.encode_frame(wire.MSG_PROOF, b"\x00" * 128)
        with pytest.raises(WireFormatError):
            wire.decode_proof(frame)


def test_priority_outside_wire_range_rejected():
    request = wire.ClaimRequest(model=_small_model(), keys=_keys(), priority=200)
    with pytest.raises(WireFormatError, match="priority"):
        wire.encode_claim_request(request)
    request.priority = -129
    with pytest.raises(WireFormatError, match="priority"):
        wire.encode_claim_request(request)
    request.priority = 127
    wire.decode_claim_request(wire.encode_claim_request(request))
