"""Tests for the dense polynomial ring."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.field.poly import Polynomial
from repro.field.prime import BN254_R as R

coeff_lists = st.lists(st.integers(min_value=0, max_value=R - 1), max_size=10)


class TestConstruction:
    def test_zero(self):
        assert Polynomial.zero().is_zero()
        assert Polynomial([0, 0, 0]).is_zero()

    def test_trailing_zeros_trimmed(self):
        assert Polynomial([1, 2, 0, 0]).degree == 1

    def test_degree_of_zero_is_minus_one(self):
        assert Polynomial.zero().degree == -1

    def test_monomial(self):
        p = Polynomial.monomial(3, 5)
        assert p.degree == 3
        assert p(2) == 5 * 8

    def test_x(self):
        assert Polynomial.x()(7) == 7


class TestRingOps:
    @given(a=coeff_lists, b=coeff_lists)
    def test_add_commutes(self, a, b):
        assert Polynomial(a) + Polynomial(b) == Polynomial(b) + Polynomial(a)

    @given(a=coeff_lists, b=coeff_lists)
    def test_mul_commutes(self, a, b):
        assert Polynomial(a) * Polynomial(b) == Polynomial(b) * Polynomial(a)

    @given(a=coeff_lists, b=coeff_lists, c=coeff_lists)
    def test_distributive(self, a, b, c):
        pa, pb, pc = Polynomial(a), Polynomial(b), Polynomial(c)
        assert pa * (pb + pc) == pa * pb + pa * pc

    @given(a=coeff_lists)
    def test_sub_self_is_zero(self, a):
        assert (Polynomial(a) - Polynomial(a)).is_zero()

    def test_scale(self):
        assert Polynomial([1, 2]).scale(3) == Polynomial([3, 6])

    @given(a=coeff_lists, point=st.integers(min_value=0, max_value=R - 1))
    def test_evaluation_is_ring_homomorphism(self, a, point):
        p = Polynomial(a)
        q = Polynomial([1, 1])
        assert (p * q)(point) == p(point) * q(point) % R
        assert (p + q)(point) == (p(point) + q(point)) % R


class TestDivision:
    def test_divmod_identity(self):
        a = Polynomial([1, 2, 3, 4, 5])
        b = Polynomial([7, 1, 2])
        q, r = a.divmod(b)
        assert q * b + r == a
        assert r.degree < b.degree

    def test_exact_division(self):
        b = Polynomial([1, 1])
        q = Polynomial([2, 3, 4])
        a = b * q
        quotient, remainder = a.divmod(b)
        assert quotient == q
        assert remainder.is_zero()

    def test_division_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            Polynomial([1]).divmod(Polynomial.zero())

    def test_floordiv_and_mod_operators(self):
        a = Polynomial([1, 0, 1])
        b = Polynomial([1, 1])
        assert (a // b) * b + (a % b) == a

    def test_vanishing_polynomial_division(self):
        # (x^4 - 1) / (x - 1) = x^3 + x^2 + x + 1
        t = Polynomial([-1, 0, 0, 0, 1])
        d = Polynomial([-1, 1])
        q, r = t.divmod(d)
        assert r.is_zero()
        assert q == Polynomial([1, 1, 1, 1])


class TestInterpolation:
    def test_through_points(self):
        xs = [1, 2, 3, 4]
        ys = [10, 20, 37, 99]
        p = Polynomial.interpolate(xs, ys)
        for x, y in zip(xs, ys):
            assert p(x) == y
        assert p.degree <= 3

    def test_constant(self):
        p = Polynomial.interpolate([5], [42])
        assert p(0) == 42

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            Polynomial.interpolate([1, 2], [1])

    def test_duplicate_points_rejected(self):
        with pytest.raises(ValueError):
            Polynomial.interpolate([1, 1], [2, 3])

    def test_repr(self):
        assert "x^1" in repr(Polynomial([0, 2]))
        assert repr(Polynomial.zero()) == "Polynomial(0)"
