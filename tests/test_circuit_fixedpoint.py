"""Tests for fixed-point encoding and circuit arithmetic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuit.builder import CircuitBuilder
from repro.circuit.fixedpoint import DEFAULT_FORMAT, FixedPointFormat

floats = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)
FMT = FixedPointFormat(frac_bits=16, total_bits=48)


class TestFormatValidation:
    def test_frac_bits_must_be_positive(self):
        with pytest.raises(ValueError):
            FixedPointFormat(frac_bits=0, total_bits=8)

    def test_total_must_exceed_frac(self):
        with pytest.raises(ValueError):
            FixedPointFormat(frac_bits=16, total_bits=16)

    def test_too_wide_for_field(self):
        with pytest.raises(ValueError):
            FixedPointFormat(frac_bits=16, total_bits=130)

    def test_default_format_valid(self):
        assert DEFAULT_FORMAT.frac_bits == 16


class TestEncodeDecode:
    @given(x=floats)
    def test_round_trip_within_resolution(self, x):
        assert abs(FMT.decode(FMT.encode(x)) - x) <= FMT.resolution()

    def test_negative_wraps_to_top(self):
        from repro.field.prime import BN254_R as R

        encoded = FMT.encode(-1.0)
        assert encoded > R // 2

    def test_overflow_rejected(self):
        small = FixedPointFormat(frac_bits=8, total_bits=16)
        with pytest.raises(OverflowError):
            small.encode(1000.0)

    def test_zero(self):
        assert FMT.encode(0.0) == 0
        assert FMT.decode(0) == 0.0

    def test_encode_array(self):
        values = np.array([0.5, -0.5, 2.0])
        encoded = FMT.encode_array(values)
        decoded = FMT.decode_array(encoded)
        np.testing.assert_allclose(decoded, values, atol=FMT.resolution())

    def test_decode_array_with_shape(self):
        encoded = FMT.encode_array(np.zeros((2, 3)))
        assert FMT.decode_array(encoded, shape=(2, 3)).shape == (2, 3)

    def test_resolution(self):
        assert FMT.resolution() == 2.0**-16


class TestCircuitOps:
    @given(a=floats, b=floats)
    def test_mul_accuracy(self, a, b):
        builder = CircuitBuilder("fp")
        x = builder.private_input("x", FMT.encode(a))
        y = builder.private_input("y", FMT.encode(b))
        z = FMT.mul(builder, x, y)
        builder.check()
        assert abs(FMT.decode(z.value) - a * b) < 1e-3 * max(1.0, abs(a * b))

    def test_inner_product_matches_numpy(self, nprng):
        xs_f = nprng.uniform(-2, 2, 8)
        ys_f = nprng.uniform(-2, 2, 8)
        builder = CircuitBuilder("ip")
        xs = [builder.private_input(f"x{i}", FMT.encode(v)) for i, v in enumerate(xs_f)]
        ys = [builder.private_input(f"y{i}", FMT.encode(v)) for i, v in enumerate(ys_f)]
        out = FMT.inner_product(builder, xs, ys)
        builder.check()
        assert abs(FMT.decode(out.value) - float(xs_f @ ys_f)) < 1e-3

    def test_inner_product_single_truncation(self):
        builder = CircuitBuilder("ip")
        xs = [builder.private_input(f"x{i}", FMT.encode(1.0)) for i in range(4)]
        ys = [builder.private_input(f"y{i}", FMT.encode(1.0)) for i in range(4)]
        FMT.inner_product(builder, xs, ys)
        # 4 multiplies + one truncation (1 + frac + 1 + total + 1).
        expected = 4 + 1 + (FMT.frac_bits + 1) + (FMT.total_bits + 1)
        assert builder.cs.num_constraints == expected

    def test_inner_product_length_mismatch(self):
        builder = CircuitBuilder("ip")
        xs = [builder.private_input("x", FMT.encode(1.0))]
        with pytest.raises(ValueError):
            FMT.inner_product(builder, xs, [])

    def test_no_rescale_variant_keeps_double_scale(self):
        builder = CircuitBuilder("ip")
        xs = [builder.private_input("x", FMT.encode(2.0))]
        ys = [builder.private_input("y", FMT.encode(3.0))]
        raw = FMT.inner_product_no_rescale(builder, xs, ys)
        assert raw.value == FMT.encode(2.0) * FMT.encode(3.0)

    def test_rescale(self):
        builder = CircuitBuilder("rs")
        xs = [builder.private_input("x", FMT.encode(2.0))]
        ys = [builder.private_input("y", FMT.encode(3.0))]
        raw = FMT.inner_product_no_rescale(builder, xs, ys)
        out = FMT.rescale(builder, raw)
        builder.check()
        assert abs(FMT.decode(out.value) - 6.0) < 1e-3

    def test_constant(self):
        builder = CircuitBuilder("c")
        w = FMT.constant(builder, 1.5)
        assert FMT.wire_to_float(w) == pytest.approx(1.5, abs=FMT.resolution())

    def test_chain_of_muls_stays_accurate(self):
        """Repeated rescaling must not drift: (0.9)^8 via chained muls."""
        builder = CircuitBuilder("chain")
        acc = builder.private_input("x", FMT.encode(0.9))
        x = acc
        for _ in range(7):
            acc = FMT.mul(builder, acc, x)
        builder.check()
        assert abs(FMT.decode(acc.value) - 0.9**8) < 1e-3
