"""Unit tests for the protocol plumbing (setup party, transcripts).

The end-to-end flows live in test_zkrownn_protocol.py; these cover the
smaller contracts: ceremony lifecycle, transcript accounting, and error
paths that the integration tests never hit.
"""

import numpy as np
import pytest

from repro.zkrownn.protocol import (
    Message,
    ProtocolTranscript,
    TrustedSetupParty,
)


class TestTrustedSetupParty:
    def test_keys_unavailable_before_ceremony(self):
        party = TrustedSetupParty()
        with pytest.raises(RuntimeError):
            _ = party.proving_key
        with pytest.raises(RuntimeError):
            _ = party.verifying_key

    def test_ceremony_produces_matching_keys(self, watermarked_mlp, ownership_setup):
        from repro.snark import prove, verify

        model, keys, _ = watermarked_mlp
        config, circuit, _ = ownership_setup
        party = TrustedSetupParty("unit-test-party")
        party.run_ceremony(model, keys, config, seed=123)
        proof = prove(
            party.proving_key, circuit.constraint_system, circuit.assignment,
            seed=1,
        )
        assert verify(party.verifying_key, circuit.public_inputs, proof)

    def test_party_name(self):
        assert TrustedSetupParty("notary").name == "notary"


class TestProtocolTranscript:
    def test_bytes_between(self):
        t = ProtocolTranscript()
        t.record("a", "b", "x", 100)
        t.record("a", "b", "y", 50)
        t.record("b", "a", "z", 7)
        assert t.bytes_between("a", "b") == 150
        assert t.bytes_between("b", "a") == 7
        assert t.bytes_between("a", "c") == 0
        assert t.total_bytes() == 157

    def test_all_accepted_empty_is_false(self):
        assert not ProtocolTranscript().all_accepted

    def test_all_accepted(self):
        from repro.zkrownn.verifier import VerificationReport

        t = ProtocolTranscript()
        t.reports.append(VerificationReport(True, "ok"))
        assert t.all_accepted
        t.reports.append(VerificationReport(False, "nope"))
        assert not t.all_accepted

    def test_message_fields(self):
        m = Message("p", "v", "proof", 128)
        assert (m.sender, m.receiver, m.num_bytes) == ("p", "v", 128)


class TestProverErrorPaths:
    def test_overflow_reported_as_prover_error(self, watermarked_mlp):
        """A fixed-point format too narrow for the activations must raise
        a ProverError, not leak a bare ConstraintViolation."""
        from repro.circuit import FixedPointFormat
        from repro.zkrownn import CircuitConfig, OwnershipProver, ProverError

        model, keys, _ = watermarked_mlp
        tiny_format = FixedPointFormat(frac_bits=14, total_bits=16)
        prover = OwnershipProver(
            model, keys, CircuitConfig(theta=0.0, fixed_point=tiny_format)
        )
        with pytest.raises(ProverError, match="synthesis"):
            prover.synthesize()
