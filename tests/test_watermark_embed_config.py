"""Tests for embedding configuration paths and edge cases."""

import numpy as np
import pytest

from repro.datasets import mnist_like
from repro.nn import Adam, mnist_mlp_scaled, train_classifier
from repro.watermark import EmbedConfig, embed_watermark, extract_watermark, generate_keys


@pytest.fixture(scope="module")
def fresh_setup():
    rng = np.random.default_rng(10)
    data = mnist_like(400, 100, image_size=4, seed=11)
    model = mnist_mlp_scaled(input_dim=16, hidden=16, rng=rng)
    train_classifier(model, data.x_train, data.y_train, Adam(0.005),
                     epochs=4, batch_size=32, rng=rng)
    keys = generate_keys(model, data.x_train, data.y_train,
                         embed_layer=1, wm_bits=8, min_triggers=4, rng=rng)
    keys.trigger_inputs = keys.trigger_inputs[:4]
    return model, keys, data


class TestEmbedConfigPaths:
    def test_no_cluster_term(self, fresh_setup):
        """lambda_cluster = 0 disables the GMM term; projection alone must
        still drive BER down."""
        model, keys, data = fresh_setup
        clone = model.copy()
        report = embed_watermark(
            clone, keys, data.x_train, data.y_train,
            config=EmbedConfig(epochs=15, seed=1, lambda_projection=5.0,
                               lambda_cluster=0.0),
        )
        assert report.ber_after <= report.ber_before

    def test_sparse_wm_steps(self, fresh_setup):
        """A low wm_steps_per_epoch still records watermark losses."""
        model, keys, data = fresh_setup
        clone = model.copy()
        report = embed_watermark(
            clone, keys, data.x_train, data.y_train,
            config=EmbedConfig(epochs=2, seed=1, wm_steps_per_epoch=1),
        )
        assert len(report.wm_loss_history) >= 2  # at least one per epoch

    def test_zero_epochs_is_noop(self, fresh_setup):
        model, keys, data = fresh_setup
        clone = model.copy()
        before = extract_watermark(clone, keys).ber
        report = embed_watermark(
            clone, keys, data.x_train, data.y_train,
            config=EmbedConfig(epochs=0, seed=1),
        )
        assert report.ber_before == report.ber_after == before
        for a, b in zip(clone.get_weights(), model.get_weights()):
            np.testing.assert_allclose(a, b)

    def test_custom_optimizer(self, fresh_setup):
        from repro.nn import SGD

        model, keys, data = fresh_setup
        clone = model.copy()
        report = embed_watermark(
            clone, keys, data.x_train, data.y_train,
            config=EmbedConfig(epochs=3, seed=1),
            optimizer=SGD(0.01, momentum=0.9),
        )
        assert len(report.task_loss_history) == 3

    def test_explicit_eval_split_used(self, fresh_setup):
        model, keys, data = fresh_setup
        clone = model.copy()
        report = embed_watermark(
            clone, keys, data.x_train, data.y_train,
            data.x_test, data.y_test,
            config=EmbedConfig(epochs=1, seed=1),
        )
        assert 0.0 <= report.accuracy_after <= 1.0

    def test_wm_loss_decreases_over_training(self, fresh_setup):
        model, keys, data = fresh_setup
        clone = model.copy()
        report = embed_watermark(
            clone, keys, data.x_train, data.y_train,
            config=EmbedConfig(epochs=20, seed=1, lambda_projection=5.0),
        )
        first = np.mean(report.wm_loss_history[:5])
        last = np.mean(report.wm_loss_history[-5:])
        assert last < first
