"""Tests for multi-scalar multiplication and fixed-base tables."""

import random

import pytest

from repro.curves.bn254 import R
from repro.curves.g1 import G1Point
from repro.curves.g2 import G2Point
from repro.curves.msm import (
    FixedBaseTableG1,
    FixedBaseTableG2,
    msm_g1,
    msm_g2,
    naive_msm_g1,
    naive_msm_g2,
    pippenger_window_size,
)

G = G1Point.generator()
H = G2Point.generator()


def _affine(p: G1Point):
    return None if p.is_infinity() else (p.x, p.y)


class TestPippengerG1:
    @pytest.mark.parametrize("n", [1, 2, 5, 33, 150])
    def test_matches_naive(self, n, rng):
        points = [_affine(G * rng.randrange(1, 1000)) for _ in range(n)]
        scalars = [rng.randrange(R) for _ in range(n)]
        fast = G1Point.from_jacobian(msm_g1(points, scalars))
        slow = G1Point.from_jacobian(naive_msm_g1(points, scalars))
        assert fast == slow

    def test_scalar_sum_identity(self, rng):
        # sum k_i * G == (sum k_i) * G
        scalars = [rng.randrange(R) for _ in range(20)]
        points = [_affine(G)] * 20
        got = G1Point.from_jacobian(msm_g1(points, scalars))
        assert got == G * (sum(scalars) % R)

    def test_empty(self):
        assert G1Point.from_jacobian(msm_g1([], [])).is_infinity()

    def test_all_zero_scalars(self):
        points = [_affine(G), _affine(G * 2)]
        assert G1Point.from_jacobian(msm_g1(points, [0, 0])).is_infinity()

    def test_infinity_points_skipped(self):
        points = [None, _affine(G)]
        got = G1Point.from_jacobian(msm_g1(points, [5, 7]))
        assert got == G * 7

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            msm_g1([_affine(G)], [1, 2])

    def test_negative_wrap(self):
        got = G1Point.from_jacobian(msm_g1([_affine(G)], [R - 1]))
        assert got == -G


class TestPippengerG2:
    @pytest.mark.parametrize("n", [1, 3, 20])
    def test_matches_naive(self, n, rng):
        points = [H * rng.randrange(1, 50) for _ in range(n)]
        scalars = [rng.randrange(R) for _ in range(n)]
        assert msm_g2(points, scalars) == naive_msm_g2(points, scalars)

    def test_empty(self):
        assert msm_g2([], []).is_infinity()

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            msm_g2([H], [])


class TestWindowHeuristic:
    @pytest.mark.parametrize("signed", [True, False])
    def test_monotone(self, signed):
        sizes = [
            pippenger_window_size(n, signed=signed)
            for n in (1, 10, 100, 1000, 10**5)
        ]
        assert sizes == sorted(sizes)

    def test_small_inputs(self):
        assert pippenger_window_size(1, signed=False) == 1
        assert pippenger_window_size(1) >= 1


class TestFixedBaseG1:
    @pytest.fixture(scope="class")
    def table(self):
        return FixedBaseTableG1((G.x, G.y), window=4)

    def test_matches_scalar_mul(self, table, rng):
        for _ in range(5):
            k = rng.randrange(R)
            assert G1Point.from_jacobian(table.mul(k)) == G * k

    def test_zero(self, table):
        assert G1Point.from_jacobian(table.mul(0)).is_infinity()

    def test_one(self, table):
        assert G1Point.from_jacobian(table.mul(1)) == G

    def test_order(self, table):
        assert G1Point.from_jacobian(table.mul(R)).is_infinity()

    def test_mul_many(self, table):
        results = table.mul_many([2, 3])
        assert G1Point.from_jacobian(results[0]) == G * 2
        assert G1Point.from_jacobian(results[1]) == G * 3


class TestFixedBaseG2:
    @pytest.fixture(scope="class")
    def table(self):
        return FixedBaseTableG2(H, window=4)

    def test_matches_scalar_mul(self, table, rng):
        for _ in range(3):
            k = rng.randrange(R)
            assert table.mul(k) == H * k

    def test_zero(self, table):
        assert table.mul(0).is_infinity()

    def test_mul_many(self, table):
        assert table.mul_many([5])[0] == H * 5


class TestSharedScalarMultiMsm:
    """msm_g1_multi: several point sets, one scalar vector, one recoding."""

    def _inputs(self, rng, n, *, none_every=0):
        points = []
        for i in range(n):
            if none_every and i % none_every == 1:
                points.append(None)
            else:
                points.append(_affine(G * rng.randrange(1, 5000)))
        return points

    @pytest.mark.parametrize("n", [1, 2, 7, 40, 200])
    def test_matches_independent_msms(self, n, rng):
        from repro.curves.msm import msm_g1_multi

        scalars = [rng.randrange(2 * R) for _ in range(n)]
        lists = [self._inputs(rng, n), self._inputs(rng, n)]
        got = [G1Point.from_jacobian(p) for p in msm_g1_multi(lists, scalars)]
        want = [G1Point.from_jacobian(msm_g1(ps, scalars)) for ps in lists]
        assert got == want

    def test_independent_infinity_patterns(self, rng):
        # The point sets may have None entries at DIFFERENT positions; the
        # shared recoding must not couple them.
        from repro.curves.msm import msm_g1_multi

        n = 60
        scalars = [0 if i % 9 == 4 else rng.randrange(R) for i in range(n)]
        lists = [
            self._inputs(rng, n, none_every=7),
            self._inputs(rng, n, none_every=5),
            self._inputs(rng, n, none_every=3),
        ]
        got = [G1Point.from_jacobian(p) for p in msm_g1_multi(lists, scalars)]
        want = [G1Point.from_jacobian(naive_msm_g1(ps, scalars)) for ps in lists]
        assert got == want

    def test_all_zero_scalars(self, rng):
        from repro.curves.msm import msm_g1_multi

        points = self._inputs(rng, 8)
        results = msm_g1_multi([points, points], [0] * 8)
        assert all(G1Point.from_jacobian(p).is_infinity() for p in results)

    def test_empty_and_length_mismatch(self, rng):
        from repro.curves.msm import msm_g1_multi

        assert msm_g1_multi([], []) == []
        with pytest.raises(ValueError):
            msm_g1_multi([[_affine(G)]], [1, 2])

    def test_single_list_equals_msm_g1(self, rng):
        from repro.curves.msm import msm_g1_multi

        n = 90
        points = self._inputs(rng, n)
        scalars = [rng.randrange(R) for _ in range(n)]
        (got,) = msm_g1_multi([points], scalars)
        assert G1Point.from_jacobian(got) == G1Point.from_jacobian(
            msm_g1(points, scalars)
        )
