"""Tests for the ProvingEngine facade: caching, stats, and the amortized
ownership-claim path.

Acceptance property of the staged pipeline: proving a second ownership
claim for the same model shape skips compilation and setup entirely,
asserted via the engine's hit counters.
"""

import numpy as np
import pytest

from repro.circuit import FixedPointFormat
from repro.engine import ArtifactStore, ProvingEngine
from repro.nn import mnist_mlp_scaled
from repro.snark import setup
from repro.watermark.keys import WatermarkKeys
from repro.zkrownn import (
    CircuitConfig,
    OwnershipProver,
    OwnershipVerifier,
    extraction_structure_key,
    extraction_synthesizer,
    prove_ownership_with_engine,
)


def _chain_synth(x: int, y: int, length: int = 16):
    def synthesize(b):
        out = b.public_output("o")
        wx = b.private_input("x", x)
        wy = b.private_input("y", y)
        acc = wx
        for _ in range(length):
            acc = b.mul(acc, wy)
        b.bind_output(out, acc)
        return None

    return synthesize


class TestEngineCaching:
    def test_compile_miss_then_hit(self):
        engine = ProvingEngine()
        compiled1, res1 = engine.synthesize("k", _chain_synth(3, 5))
        compiled2, res2 = engine.synthesize("k", _chain_synth(7, 11))
        assert compiled1 is compiled2
        assert not res1.resynthesized and res2.resynthesized
        assert engine.stats.compile_misses == 1
        assert engine.stats.compile_hits == 1
        assert engine.stats.witness_resyntheses == 1

    def test_different_keys_compile_separately(self):
        engine = ProvingEngine()
        engine.synthesize("a", _chain_synth(3, 5, length=8))
        engine.synthesize("b", _chain_synth(3, 5, length=9))
        assert engine.stats.compile_misses == 2

    def test_setup_cached_by_digest(self):
        engine = ProvingEngine()
        compiled, _ = engine.synthesize("k", _chain_synth(3, 5))
        kp1 = engine.setup(compiled, seed=1)
        kp2 = engine.setup(compiled)
        assert kp1 is kp2
        assert engine.stats.setup_misses == 1
        assert engine.stats.setup_hits == 1

    def test_prove_and_verify_roundtrip(self):
        engine = ProvingEngine()
        job = engine.prove_job("k", _chain_synth(3, 5), seed=2, setup_seed=1)
        assert engine.verify(job.compiled, job.public_values, job.proof)
        # A cached-keypair repeat proof (new witness values) also verifies.
        job2 = engine.prove_job("k", _chain_synth(4, 9), seed=3)
        assert job2.reused_circuit and job2.reused_keypair
        assert engine.verify(job2.compiled, job2.public_values, job2.proof)
        bad_public = list(job2.public_values)
        bad_public[0] = (bad_public[0] + 1) % 97
        assert not engine.verify(job2.compiled, bad_public, job2.proof)

    def test_trace_divergence_falls_back_to_rebuild(self):
        engine = ProvingEngine()
        engine.synthesize("k", _chain_synth(3, 5, length=8))
        compiled, result = engine.synthesize("k", _chain_synth(3, 5, length=12))
        assert engine.stats.trace_divergences == 1
        assert engine.stats.compile_misses == 2
        assert not result.resynthesized
        assert compiled.num_constraints > 8

    def test_disk_store_survives_engine_restart(self, tmp_path):
        engine = ProvingEngine(cache_dir=str(tmp_path))
        job = engine.prove_job("k", _chain_synth(3, 5), seed=2, setup_seed=1)
        assert engine.stats.setup_misses == 1

        fresh = ProvingEngine(cache_dir=str(tmp_path))
        compiled, res = fresh.synthesize("k", _chain_synth(6, 7))
        keypair = fresh.setup(compiled)
        assert fresh.stats.setup_misses == 0
        assert fresh.stats.setup_disk_hits == 1
        proof = fresh.prove(compiled, res, seed=9)
        assert fresh.verify(compiled, res.public_values, proof)
        # Same ceremony: the persisted VK verifies the first engine's proof.
        assert keypair.verifying_key.to_bytes() == \
            job.keypair.verifying_key.to_bytes()

    def test_artifact_store_corrupt_files_are_misses(self, tmp_path):
        store = ArtifactStore(tmp_path)
        assert store.load_keypair("nope") is None
        (tmp_path / "bad.pk").write_bytes(b"garbage")
        (tmp_path / "bad.vk").write_bytes(b"garbage")
        assert store.load_keypair("bad") is None

    def test_artifact_store_constraint_system_roundtrip(self, tmp_path):
        """The audit artifact (digest.r1cs) written at setup time loads back."""
        from repro.snark.serialize import serialize_r1cs

        engine = ProvingEngine(cache_dir=str(tmp_path))
        compiled, _ = engine.synthesize("k", _chain_synth(3, 5))
        engine.setup(compiled, seed=1)
        store = ArtifactStore(tmp_path)
        assert store.load_constraint_system("nope") is None
        restored = store.load_constraint_system(compiled.digest)
        assert restored is not None
        assert serialize_r1cs(restored) == serialize_r1cs(compiled.cs)

    def test_verify_without_setup_raises(self):
        prover_engine = ProvingEngine()
        job = prover_engine.prove_job("k", _chain_synth(3, 5), seed=2, setup_seed=1)
        cold = ProvingEngine()
        compiled, _ = cold.synthesize("k", _chain_synth(3, 5))
        with pytest.raises(ValueError, match="run setup first"):
            cold.verify(compiled, job.public_values, job.proof)

    def test_witness_check_rejects_before_setup(self):
        engine = ProvingEngine()

        def reject(synthesis):
            raise ValueError("nope")

        with pytest.raises(ValueError, match="nope"):
            engine.prove_job("k", _chain_synth(3, 5), witness_check=reject)
        # Compilation happened, but no setup was paid for the doomed proof.
        assert engine.stats.compile_misses == 1
        assert engine.stats.setup_misses == 0


# ------------------------------------------------------- ownership claims --


FMT = FixedPointFormat(frac_bits=12, total_bits=32)


def _tiny_ownership(model_seed: int):
    model = mnist_mlp_scaled(
        input_dim=8, hidden=4, rng=np.random.default_rng(model_seed)
    )
    krng = np.random.default_rng(1)
    keys = WatermarkKeys(
        embed_layer=1,
        target_class=0,
        trigger_inputs=krng.uniform(0, 1, (2, 8)),
        projection=krng.standard_normal((4, 4)),
        signature=krng.integers(0, 2, 4).astype(np.int64),
    )
    # theta=1.0: any extraction passes; these tests measure the pipeline,
    # not embedding quality (covered by the protocol tests).
    return model, keys, CircuitConfig(theta=1.0, fixed_point=FMT)


@pytest.fixture(scope="module")
def claim_engine():
    return ProvingEngine()


@pytest.fixture(scope="module")
def two_claims(claim_engine):
    model_a, keys, config = _tiny_ownership(0)
    model_b, _, _ = _tiny_ownership(42)
    claim_a, job_a = prove_ownership_with_engine(
        claim_engine, model_a, keys, config, seed=5, setup_seed=7
    )
    claim_b, job_b = prove_ownership_with_engine(
        claim_engine, model_b, keys, config, seed=6
    )
    return (model_a, claim_a, job_a), (model_b, claim_b, job_b), (keys, config)


class TestOwnershipThroughEngine:
    def test_second_claim_skips_compile_and_setup(self, claim_engine, two_claims):
        """The acceptance criterion: same model shape => the second claim
        never recompiles and never re-runs setup (hit counters)."""
        (_, _, job_a), (_, _, job_b), _ = two_claims
        assert not job_a.reused_circuit and job_a.synthesis.resynthesized is False
        assert job_b.reused_circuit and job_b.reused_keypair
        assert job_b.synthesis.resynthesized
        assert claim_engine.stats.compile_misses == 1
        assert claim_engine.stats.compile_hits >= 1
        assert claim_engine.stats.setup_misses == 1
        assert claim_engine.stats.trace_divergences == 0
        assert "compile_seconds" not in job_b.timings

    def test_both_claims_verify_under_shared_keypair(self, two_claims):
        """Cached keypair reuse produces proofs that verify."""
        (model_a, claim_a, job_a), (model_b, claim_b, job_b), _ = two_claims
        assert job_a.keypair is job_b.keypair
        verifier = OwnershipVerifier(job_a.keypair.verifying_key, prepare=True)
        report_a = verifier.verify(model_a, claim_a)
        report_b = verifier.verify(model_b, claim_b)
        assert report_a.accepted, report_a.reason
        assert report_b.accepted, report_b.reason
        # Claims are model-bound: swapping models must fail.
        assert not verifier.verify(model_a, claim_b).accepted

    def test_changed_config_misses_cache(self, claim_engine, two_claims):
        """A changed CircuitConfig is a different shape key => cache miss."""
        _, _, (keys, config) = two_claims
        model, _, _ = _tiny_ownership(0)
        changed = CircuitConfig(
            theta=1.0, fixed_point=FMT, sigmoid_degree=7
        )
        assert extraction_structure_key(model, keys, changed) != \
            extraction_structure_key(model, keys, config)
        misses_before = claim_engine.stats.compile_misses
        compiled, result = claim_engine.synthesize(
            extraction_structure_key(model, keys, changed),
            extraction_synthesizer(model, keys, changed),
        )
        assert claim_engine.stats.compile_misses == misses_before + 1
        assert not result.resynthesized

    def test_prover_object_engine_path(self, claim_engine, two_claims):
        """OwnershipProver.prove_ownership_cached rides the same caches."""
        _, _, (keys, config) = two_claims
        model, _, _ = _tiny_ownership(3)
        prover = OwnershipProver(model, keys, config, engine=claim_engine)
        setup_misses_before = claim_engine.stats.setup_misses
        claim = prover.prove_ownership_cached(seed=11)
        assert claim_engine.stats.setup_misses == setup_misses_before
        verifier = OwnershipVerifier(
            claim_engine.setup(claim_engine.compiled_for(
                extraction_structure_key(model, keys, config)
            )).verifying_key
        )
        assert verifier.verify(model, claim).accepted
