"""Tests for the self-tuning layer: profile, search, and knob wiring.

Three layers, in increasing integration order:

* ``MachineProfile`` document semantics (roundtrip, window tables,
  resolution precedence, corrupt-file tolerance);
* the pure search primitives and the :class:`Tuner` driven entirely by
  stubbed measurement callables (no kernel ever runs);
* the acceptance property of the whole feature -- knobs recorded in a
  profile demonstrably take effect where the ISSUE wires them:
  field-backend ``auto``, ``pippenger_window_size``, ``get_backend``,
  and ``ProofService``.
"""

from __future__ import annotations

import json

import pytest

from repro.curves.msm import pippenger_window_size
from repro.field.backend import (
    available_field_backends,
    resolve_field_backend,
    set_field_backend,
)
from repro.parallel.backend import ProcessBackend, SerialBackend, get_backend
from repro.tuning import (
    MachineProfile,
    Tuner,
    TuningResult,
    grid_search,
    hill_climb,
    load_profile,
)
from repro.tuning.profile import (
    PROFILE_ENV,
    active_profile,
    active_profile_metadata,
    clear_profile_cache,
    set_profile,
)


@pytest.fixture(autouse=True)
def _fresh_profile_state(monkeypatch):
    """Each test starts unpinned with profile loading disabled."""
    monkeypatch.setenv(PROFILE_ENV, "off")
    clear_profile_cache()
    yield
    clear_profile_cache()
    set_field_backend(None)


class TestMachineProfile:
    def test_dict_roundtrip(self):
        profile = MachineProfile(
            field_backend="numpy",
            compute_backend="process",
            workers=4,
            max_batch=8,
            min_msm_chunk=1024,
            pippenger_windows={"signed": [[0, 9], [4096, 11]]},
            measurements={"reference_baseline_seconds": 1.5},
            machine={"cpu_count": 4},
            created_at="2026-08-08T00:00:00+00:00",
        )
        back = MachineProfile.from_dict(profile.to_dict())
        assert back.to_dict() == profile.to_dict()

    def test_from_dict_sorts_window_rows_and_coerces_ints(self):
        profile = MachineProfile.from_dict(
            {"pippenger_windows": {"signed": [["4096", "11"], [0, 9]]}}
        )
        assert profile.pippenger_windows == {"signed": [[0, 9], [4096, 11]]}

    def test_from_dict_rejects_non_object(self):
        with pytest.raises(ValueError):
            MachineProfile.from_dict(["not", "a", "profile"])

    def test_window_override_takes_last_row_at_or_below(self):
        profile = MachineProfile(
            pippenger_windows={"signed": [[64, 6], [4096, 11]]}
        )
        assert profile.window_override(32) is None
        assert profile.window_override(64) == 6
        assert profile.window_override(4095) == 6
        assert profile.window_override(1 << 20) == 11
        # No unsigned table: unsigned lookups fall through.
        assert profile.window_override(4096, signed=False) is None

    def test_save_load_roundtrip(self, tmp_path):
        path = tmp_path / "nested" / "profile.json"
        profile = MachineProfile(field_backend="montgomery", max_batch=3)
        written = profile.save(str(path))
        assert written == str(path)
        loaded = load_profile(str(path))
        assert loaded.field_backend == "montgomery"
        assert loaded.max_batch == 3
        assert loaded.path == str(path)


class TestProfileResolution:
    def test_env_off_disables_loading(self, tmp_path, monkeypatch):
        MachineProfile(field_backend="montgomery").save(
            str(tmp_path / "profile.json")
        )
        monkeypatch.setenv(PROFILE_ENV, "off")
        clear_profile_cache()
        assert active_profile() is None
        assert active_profile_metadata() == {"loaded": False}

    def test_env_path_loads_profile(self, tmp_path, monkeypatch):
        path = tmp_path / "profile.json"
        MachineProfile(field_backend="montgomery", workers=2).save(str(path))
        monkeypatch.setenv(PROFILE_ENV, str(path))
        clear_profile_cache()
        profile = active_profile()
        assert profile is not None and profile.field_backend == "montgomery"
        meta = active_profile_metadata()
        assert meta["loaded"] is True
        assert meta["path"] == str(path)
        assert meta["workers"] == 2

    def test_corrupt_profile_treated_as_absent(self, tmp_path, monkeypatch):
        path = tmp_path / "profile.json"
        path.write_text("{not json")
        monkeypatch.setenv(PROFILE_ENV, str(path))
        clear_profile_cache()
        assert active_profile() is None

    def test_missing_profile_treated_as_absent(self, tmp_path, monkeypatch):
        monkeypatch.setenv(PROFILE_ENV, str(tmp_path / "nope.json"))
        clear_profile_cache()
        assert active_profile() is None

    def test_pin_beats_environment(self, tmp_path, monkeypatch):
        path = tmp_path / "profile.json"
        MachineProfile(field_backend="montgomery").save(str(path))
        monkeypatch.setenv(PROFILE_ENV, str(path))
        clear_profile_cache()
        set_profile(MachineProfile(field_backend="python"))
        profile = active_profile()
        assert profile is not None and profile.field_backend == "python"
        set_profile(None)
        reloaded = active_profile()
        assert reloaded is not None and reloaded.field_backend == "montgomery"


class TestKnobsTakeEffect:
    """The acceptance criterion: a written profile steers real startup."""

    def test_auto_field_backend_prefers_profile_winner(self):
        set_profile(MachineProfile(field_backend="montgomery"))
        assert resolve_field_backend("auto") == "montgomery"

    def test_auto_field_backend_ignores_unavailable_winner(self):
        # A profile measured on a machine with gmpy2 must not break a
        # machine without it: auto falls back to the static order.
        set_profile(MachineProfile(field_backend="definitely-not-a-backend"))
        fallback = resolve_field_backend("auto")
        assert fallback in available_field_backends()

    def test_explicit_name_beats_profile(self):
        set_profile(MachineProfile(field_backend="montgomery"))
        assert resolve_field_backend("python") == "python"

    def test_window_size_prefers_profile_table(self):
        static = pippenger_window_size(4096)
        static_unsigned = pippenger_window_size(4096, signed=False)
        set_profile(
            MachineProfile(pippenger_windows={"signed": [[0, 13]]})
        )
        assert pippenger_window_size(4096) == 13
        assert pippenger_window_size(7) == 13
        # Unsigned path has no tuned table: static heuristic still rules.
        assert pippenger_window_size(4096, signed=False) == static_unsigned
        set_profile(None)
        assert pippenger_window_size(4096) == static

    def test_get_backend_uses_profile_compute_settings(self, monkeypatch):
        monkeypatch.delenv("ZKROWNN_BACKEND", raising=False)
        monkeypatch.delenv("ZKROWNN_WORKERS", raising=False)
        set_profile(
            MachineProfile(
                compute_backend="process", workers=2, min_msm_chunk=256
            )
        )
        backend = get_backend()
        try:
            assert isinstance(backend, ProcessBackend)
            assert backend.workers == 2
            assert backend.min_msm_chunk == 256
        finally:
            backend.close()

    def test_env_beats_profile_compute_backend(self, monkeypatch):
        monkeypatch.setenv("ZKROWNN_BACKEND", "serial")
        set_profile(MachineProfile(compute_backend="process", workers=2))
        assert isinstance(get_backend(), SerialBackend)

    def test_get_backend_defaults_serial_without_profile(self, monkeypatch):
        monkeypatch.delenv("ZKROWNN_BACKEND", raising=False)
        assert isinstance(get_backend(), SerialBackend)

    def test_proof_service_uses_profile_max_batch(self, tmp_path):
        from repro.service.registry import ClaimRegistry
        from repro.service.server import ProofService

        set_profile(MachineProfile(max_batch=3))
        service = ProofService(ClaimRegistry(tmp_path / "reg"))
        assert service.scheduler.max_batch == 3

    def test_proof_service_explicit_max_batch_beats_profile(self, tmp_path):
        from repro.service.registry import ClaimRegistry
        from repro.service.server import ProofService

        set_profile(MachineProfile(max_batch=3))
        service = ProofService(ClaimRegistry(tmp_path / "reg"), max_batch=5)
        assert service.scheduler.max_batch == 5

    def test_written_profile_loads_end_to_end(self, tmp_path, monkeypatch):
        # The full chain a user sees: `zkrownn tune --out p.json`, then
        # ZKROWNN_PROFILE=p.json in the proving environment.
        path = tmp_path / "profile.json"
        MachineProfile(
            field_backend="montgomery",
            compute_backend="serial",
            max_batch=5,
            pippenger_windows={"signed": [[0, 12]]},
        ).save(str(path))
        monkeypatch.setenv(PROFILE_ENV, str(path))
        monkeypatch.delenv("ZKROWNN_FIELD_BACKEND", raising=False)
        monkeypatch.delenv("ZKROWNN_BACKEND", raising=False)
        clear_profile_cache()
        assert resolve_field_backend(None) == "montgomery"
        assert pippenger_window_size(4096) == 12
        assert isinstance(get_backend(), SerialBackend)


class TestSearchPrimitives:
    def test_grid_search_picks_minimum(self):
        table = {"a": 3.0, "b": 1.0, "c": 2.0}
        best, trials = grid_search(list(table), table.__getitem__)
        assert best == "b"
        assert [t["candidate"] for t in trials] == ["a", "b", "c"]
        assert [t["seconds"] for t in trials] == [3.0, 1.0, 2.0]

    def test_grid_search_tie_prefers_earlier_candidate(self):
        best, _ = grid_search(["first", "second"], lambda _c: 1.0)
        assert best == "first"

    def test_grid_search_rejects_empty(self):
        with pytest.raises(ValueError):
            grid_search([], lambda _c: 0.0)

    def test_hill_climb_walks_to_minimum(self):
        best, trials = hill_climb(8, lambda c: (c - 11) ** 2, lo=4, hi=16)
        assert best == 11
        probed = [t["candidate"] for t in trials]
        assert probed == sorted(set(probed), key=probed.index)

    def test_hill_climb_memoizes_probes(self):
        calls = []

        def measure(c):
            calls.append(c)
            return abs(c - 6)

        best, _ = hill_climb(5, measure, lo=4, hi=16)
        assert best == 6
        assert len(calls) == len(set(calls))

    def test_hill_climb_respects_bounds(self):
        best, trials = hill_climb(4, lambda c: c, lo=4, hi=16)
        assert best == 4
        assert all(4 <= t["candidate"] <= 16 for t in trials)
        with pytest.raises(ValueError):
            hill_climb(3, lambda c: c, lo=4, hi=16)


def _stubbed_tuner(**overrides):
    """A Tuner whose every measurement is a deterministic table lookup."""
    field_cost = {"python": 2.0, "montgomery": 1.0, "numpy": 3.0,
                  "gmpy2": 4.0}
    defaults = dict(
        quick=True,
        timer=iter(float(i) for i in range(10_000)).__next__,
        measure_field_backend=lambda name: field_cost.get(name, 9.0),
        # Optimal window width 7 regardless of size.
        measure_window=lambda _n, c: float((c - 7) ** 2),
        # Serial wins the prove stage.
        measure_prove=lambda backend, workers: (
            1.0 if backend == "serial" else 5.0 + (workers or 0)
        ),
        measure_chunk=lambda _workers, chunk: float(chunk),
        # Per-claim cost favours batch=4: 4/2=2.0, 6/4=1.5.
        measure_batch=lambda b: {2: 4.0, 4: 6.0}[b],
        measure_reference=iter([10.0, 5.0]).__next__,
    )
    defaults.update(overrides)
    return Tuner(**defaults)


class TestTunerStubbed:
    def test_run_assembles_profile_from_stage_winners(self):
        result = _stubbed_tuner().run()
        assert isinstance(result, TuningResult)
        profile = result.profile
        assert profile.field_backend == "montgomery"
        assert profile.compute_backend == "serial"
        assert profile.min_msm_chunk is None  # serial won: chunk stage skipped
        assert profile.max_batch == 4
        assert profile.pippenger_windows == {"signed": [[512, 7]]}
        assert result.baseline_seconds == 10.0
        assert result.tuned_seconds == 5.0
        assert result.speedup == 2.0

    def test_run_restores_ambient_state(self):
        sentinel = MachineProfile(field_backend="python")
        set_profile(sentinel)
        previous_backend = set_field_backend("python")
        try:
            _stubbed_tuner().run()
            assert active_profile() is sentinel
            assert resolve_field_backend(None) == "python"
        finally:
            set_field_backend(previous_backend)

    def test_chunk_stage_runs_when_process_wins(self):
        result = _stubbed_tuner(
            measure_prove=lambda backend, workers: (
                1.0 if backend == "process" else 5.0
            ),
        ).run()
        assert result.profile.compute_backend == "process"
        assert result.profile.min_msm_chunk == 512  # only quick candidate

    def test_measurements_embed_trials_and_delta(self):
        result = _stubbed_tuner().run()
        measurements = result.profile.measurements
        assert measurements["reference_baseline_seconds"] == 10.0
        assert measurements["reference_tuned_seconds"] == 5.0
        json.dumps(measurements)  # must be JSON-serializable as persisted
        stages = measurements["trials"]
        assert "field_backend" in stages and "max_batch" in stages

    def test_summary_is_json_serializable(self):
        summary = _stubbed_tuner().run().summary()
        json.dumps(summary)
        assert summary["speedup"] == 2.0
