"""Adversarial circuit fixtures for the soundness auditor tests.

Each factory builds a circuit with a *deliberate* soundness defect and
records which audit findings (pass id, severity) the auditor must raise
for it.  ``missing_range_check`` is the star witness: its defect is a
genuine exploit -- a forged witness that differs from the honest trace
but still satisfies the R1CS and produces a verifying Groth16 proof for
a *different* public output (exercised in test_circuit_audit.py).
"""

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.circuit.builder import CircuitBuilder

__all__ = [
    "BadCircuit",
    "ALL_BAD_CIRCUITS",
    "free_hint",
    "unbound_public_input",
    "unbound_output",
    "missing_range_check",
    "missing_boolean",
    "dead_wire",
    "degenerate_and_duplicate",
]


@dataclass
class BadCircuit:
    """A defective circuit plus the findings the auditor must produce."""

    builder: CircuitBuilder
    # (pass_id, severity) pairs that MUST appear in the audit report.
    expect: List[Tuple[str, str]]
    # Named variable indices the exploit test needs to forge assignments.
    wires: Dict[str, int] = field(default_factory=dict)


def free_hint() -> BadCircuit:
    """A hint wire allocated but never constrained: the prover picks it."""
    b = CircuitBuilder("free-hint")
    out = b.public_output("out")
    x = b.private_input("x", 3)
    b.alloc_hint("free", 7)  # never appears in any constraint
    b.bind_output(out, b.mul(x, x))
    return BadCircuit(b, expect=[("unconstrained-hint", "high")])


def unbound_public_input() -> BadCircuit:
    """A public input no constraint ever reads: the statement ignores it."""
    b = CircuitBuilder("unbound-public")
    b.public_input("claimed_digest", 5)  # never used
    out = b.public_output("out")
    x = b.private_input("x", 3)
    b.bind_output(out, b.mul(x, x))
    return BadCircuit(b, expect=[("unbound-public", "critical")])


def unbound_output() -> BadCircuit:
    """A reserved public output that is never bound to a computed wire."""
    b = CircuitBuilder("unbound-output")
    b.public_output("result")  # reserved, never bound
    x = b.private_input("x", 3)
    b.mul(x, x)
    return BadCircuit(b, expect=[("unbound-output", "critical")])


def missing_range_check(x: int = 117, shift_bits: int = 4) -> BadCircuit:
    """Truncation without the remainder range check: forgeable.

    The circuit publishes ``q = x >> shift_bits`` via the single linear
    binding ``q * 2^s + rem = x`` -- but never range-checks ``rem`` (the
    shipped :meth:`CircuitBuilder.truncate` decomposes it into bits).
    Any ``(q - k, rem + k * 2^s)`` also satisfies, so a dishonest prover
    can publish any quotient it likes.
    """
    scale = 1 << shift_bits
    b = CircuitBuilder("missing-range-check")
    out = b.public_output("q_out")
    w = b.private_input("x", x)
    q = b.alloc_hint("q", x // scale)
    rem = b.alloc_hint("rem", x % scale)
    b.assert_equal(q.scale(scale) + rem, w)  # no range check on rem!
    b.bind_output(out, q)
    return BadCircuit(
        b,
        expect=[
            ("underconstrained-hint", "high"),
            ("underconstrained-output", "critical"),
        ],
        wires={
            "out": out.index,
            "q": q.lc.as_single_variable(),
            "rem": rem.lc.as_single_variable(),
            "scale": scale,
        },
    )


def missing_boolean() -> BadCircuit:
    """Wires consumed by boolean gadgets without an assert_boolean."""
    b = CircuitBuilder("missing-boolean")
    out = b.public_output("out")
    a = b.private_input("a", 1)  # 0/1 by convention only -- unconstrained
    c = b.private_input("c", 0)
    b.bind_output(out, b.and_(a, c))
    return BadCircuit(b, expect=[("missing-boolean", "high")])


def dead_wire() -> BadCircuit:
    """A private input no constraint touches: dead weight, not exploitable."""
    b = CircuitBuilder("dead-wire")
    out = b.public_output("out")
    x = b.private_input("x", 3)
    b.private_input("unused", 42)
    b.bind_output(out, b.mul(x, x))
    return BadCircuit(b, expect=[("unconstrained-wire", "warning")])


def degenerate_and_duplicate() -> BadCircuit:
    """A tautological 0*0=0 constraint plus a literally repeated one."""
    b = CircuitBuilder("degenerate-duplicate")
    out = b.public_output("out")
    x = b.private_input("x", 3)
    y = b.mul(x, x)
    b.cs.enforce(x.lc, x.lc, y.lc)  # duplicate of the mul constraint
    zero = b.zero()
    b.cs.enforce(zero.lc, zero.lc, zero.lc)  # 0 * 0 = 0
    b.bind_output(out, y)
    return BadCircuit(
        b,
        expect=[
            ("degenerate-constraint", "info"),
            ("duplicate-constraint", "info"),
        ],
    )


ALL_BAD_CIRCUITS = [
    free_hint,
    unbound_public_input,
    unbound_output,
    missing_range_check,
    missing_boolean,
    dead_wire,
    degenerate_and_duplicate,
]
