"""Tests for Sequential, training helpers, and weight persistence."""

import numpy as np
import pytest

from repro.nn.layers import Dense, Flatten, ReLU
from repro.nn.losses import cross_entropy
from repro.nn.model import Sequential, evaluate_classifier, train_classifier
from repro.nn.optim import SGD, Adam
from repro.nn.io import load_weights, save_weights
from repro.nn.architectures import (
    cifar10_cnn,
    cifar10_cnn_scaled,
    mnist_mlp,
    mnist_mlp_scaled,
)


def tiny_model(rng):
    return Sequential([Dense(4, 8, rng=rng), ReLU(), Dense(8, 3, rng=rng)])


class TestForward:
    def test_forward_shape(self, nprng):
        model = tiny_model(nprng)
        assert model.forward(nprng.normal(size=(5, 4))).shape == (5, 3)

    def test_call_alias(self, nprng):
        model = tiny_model(nprng)
        x = nprng.normal(size=(2, 4))
        np.testing.assert_allclose(model(x), model.forward(x))

    def test_predict(self, nprng):
        model = tiny_model(nprng)
        preds = model.predict(nprng.normal(size=(6, 4)))
        assert preds.shape == (6,)
        assert ((preds >= 0) & (preds < 3)).all()

    def test_forward_collect_layers(self, nprng):
        model = tiny_model(nprng)
        acts = model.forward_collect(nprng.normal(size=(2, 4)))
        assert len(acts) == 3
        assert acts[0].shape == (2, 8)
        assert acts[-1].shape == (2, 3)

    def test_forward_to_matches_collect(self, nprng):
        model = tiny_model(nprng)
        x = nprng.normal(size=(2, 4))
        acts = model.forward_collect(x)
        np.testing.assert_allclose(model.forward_to(x, 1), acts[1])


class TestBackward:
    def test_backward_from_matches_partial_finite_diff(self, nprng):
        """Injecting a gradient at layer 1 must reach Dense 0's params."""
        model = tiny_model(nprng)
        x = nprng.normal(size=(3, 4))
        grad = nprng.normal(size=(3, 8))
        model.forward_to(x, 1, training=True)
        model.layers[0].grads.clear()
        model.backward_from(grad, 1)
        # Finite differences through layers 0..1 only.
        w = model.layers[0].params["W"]
        eps = 1e-5
        num = np.zeros_like(w)
        for i in range(w.shape[0]):
            for j in range(w.shape[1]):
                orig = w[i, j]
                w[i, j] = orig + eps
                plus = float((model.forward_to(x, 1) * grad).sum())
                w[i, j] = orig - eps
                minus = float((model.forward_to(x, 1) * grad).sum())
                w[i, j] = orig
                num[i, j] = (plus - minus) / (2 * eps)
        np.testing.assert_allclose(model.layers[0].grads["W"], num, atol=1e-4)


class TestWeights:
    def test_get_set_round_trip(self, nprng):
        model = tiny_model(nprng)
        weights = model.get_weights()
        model.set_weights([w * 0 for w in weights])
        assert all((w == 0).all() for w in model.get_weights())
        model.set_weights(weights)
        for a, b in zip(model.get_weights(), weights):
            np.testing.assert_allclose(a, b)

    def test_set_weights_shape_mismatch(self, nprng):
        model = tiny_model(nprng)
        weights = model.get_weights()
        weights[0] = np.zeros((1, 1))
        with pytest.raises(ValueError):
            model.set_weights(weights)

    def test_set_weights_count_mismatch(self, nprng):
        model = tiny_model(nprng)
        with pytest.raises(ValueError):
            model.set_weights([])

    def test_copy_is_independent(self, nprng):
        model = tiny_model(nprng)
        clone = model.copy()
        clone.layers[0].params["W"][:] = 0
        assert not (model.layers[0].params["W"] == 0).all()

    def test_num_parameters(self, nprng):
        model = tiny_model(nprng)
        assert model.num_parameters() == 4 * 8 + 8 + 8 * 3 + 3

    def test_save_load(self, nprng, tmp_path):
        model = tiny_model(nprng)
        path = tmp_path / "weights.npz"
        save_weights(model, path)
        other = tiny_model(np.random.default_rng(999))
        load_weights(other, path)
        x = nprng.normal(size=(2, 4))
        np.testing.assert_allclose(other.forward(x), model.forward(x))


class TestTraining:
    def test_loss_decreases(self, nprng):
        from repro.datasets import mnist_like

        data = mnist_like(300, 50, image_size=4, seed=3)
        model = Sequential([Dense(16, 16, rng=nprng), ReLU(), Dense(16, 10, rng=nprng)])
        history = train_classifier(
            model, data.x_train, data.y_train, Adam(0.005),
            epochs=6, batch_size=32, rng=nprng,
        )
        assert history[-1] < history[0]

    def test_accuracy_above_chance(self, nprng):
        from repro.datasets import mnist_like

        data = mnist_like(400, 100, image_size=4, seed=3)
        model = Sequential([Dense(16, 16, rng=nprng), ReLU(), Dense(16, 10, rng=nprng)])
        train_classifier(
            model, data.x_train, data.y_train, Adam(0.005),
            epochs=8, batch_size=32, rng=nprng,
        )
        assert evaluate_classifier(model, data.x_test, data.y_test) > 0.3

    def test_callback_invoked(self, nprng):
        from repro.datasets import mnist_like

        data = mnist_like(100, 10, image_size=4, seed=3)
        model = tiny_model(nprng)
        seen = []
        # 4-dim model vs 16-dim data: use matching tiny data instead.
        model = Sequential([Dense(16, 4, rng=nprng), ReLU(), Dense(4, 10, rng=nprng)])
        train_classifier(
            model, data.x_train, data.y_train, SGD(0.01),
            epochs=2, rng=nprng, callback=lambda e, l: seen.append(e),
        )
        assert seen == [0, 1]


class TestArchitectures:
    def test_table2_mlp_shape(self):
        model = mnist_mlp(np.random.default_rng(0))
        assert model.forward(np.zeros((1, 784))).shape == (1, 10)
        # 784-FC(512)-FC(512)-FC(10) parameter count.
        expected = 784 * 512 + 512 + 512 * 512 + 512 + 512 * 10 + 10
        assert model.num_parameters() == expected

    def test_table2_cnn_shape(self):
        model = cifar10_cnn(np.random.default_rng(0))
        assert model.forward(np.zeros((1, 3, 32, 32))).shape == (1, 10)

    def test_scaled_mlp_mirrors_shape(self):
        model = mnist_mlp_scaled(input_dim=64, hidden=16)
        # Same layer sequence as the paper MLP: 3 Dense, 2 ReLU.
        names = [type(l).__name__ for l in model.layers]
        paper_names = [type(l).__name__ for l in mnist_mlp().layers]
        assert names == paper_names

    def test_scaled_cnn_forward(self):
        model = cifar10_cnn_scaled(image_size=12, channels=4)
        assert model.forward(np.zeros((2, 3, 12, 12))).shape == (2, 10)

    def test_scaled_cnn_too_small_rejected(self):
        with pytest.raises(ValueError):
            cifar10_cnn_scaled(image_size=6)
