"""Tests for the synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import cifar10_like, make_image_classes, mnist_like


class TestMakeImageClasses:
    def test_shapes(self):
        data = make_image_classes(50, 10, shape=(1, 8, 8), num_classes=4, seed=0)
        assert data.x_train.shape == (50, 1, 8, 8)
        assert data.x_test.shape == (10, 1, 8, 8)
        assert data.y_train.shape == (50,)
        assert data.num_classes == 4

    def test_values_in_unit_interval(self):
        data = make_image_classes(20, 5, shape=(3, 4, 4), seed=0)
        assert data.x_train.min() >= 0.0
        assert data.x_train.max() <= 1.0

    def test_labels_in_range(self):
        data = make_image_classes(100, 10, shape=(1, 4, 4), num_classes=7, seed=0)
        assert set(np.unique(data.y_train)) <= set(range(7))

    def test_deterministic_per_seed(self):
        a = make_image_classes(10, 2, shape=(1, 4, 4), seed=5)
        b = make_image_classes(10, 2, shape=(1, 4, 4), seed=5)
        np.testing.assert_allclose(a.x_train, b.x_train)
        np.testing.assert_array_equal(a.y_train, b.y_train)

    def test_different_seeds_differ(self):
        a = make_image_classes(10, 2, shape=(1, 4, 4), seed=5)
        b = make_image_classes(10, 2, shape=(1, 4, 4), seed=6)
        assert not np.allclose(a.x_train, b.x_train)

    def test_class_structure_exists(self):
        """Same-class samples are closer than cross-class samples on average."""
        data = make_image_classes(
            200, 10, shape=(1, 8, 8), num_classes=3, noise=0.2, seed=1
        )
        x = data.x_train.reshape(200, -1)
        y = data.y_train
        centroids = np.stack([x[y == c].mean(axis=0) for c in range(3)])
        within = np.mean([
            np.linalg.norm(x[i] - centroids[y[i]]) for i in range(200)
        ])
        cross = np.mean([
            np.linalg.norm(x[i] - centroids[(y[i] + 1) % 3]) for i in range(200)
        ])
        assert within < cross


class TestMnistLike:
    def test_flattened_by_default(self):
        data = mnist_like(30, 5, image_size=8, seed=0)
        assert data.x_train.shape == (30, 64)

    def test_unflattened(self):
        data = mnist_like(30, 5, image_size=8, seed=0, flatten=False)
        assert data.x_train.shape == (30, 1, 8, 8)

    def test_default_is_mnist_shape(self):
        data = mnist_like(5, 2)
        assert data.x_train.shape == (5, 784)

    def test_input_shape_property(self):
        data = mnist_like(5, 2, image_size=8)
        assert data.input_shape == (64,)


class TestCifarLike:
    def test_channels_first(self):
        data = cifar10_like(10, 2, image_size=8, seed=0)
        assert data.x_train.shape == (10, 3, 8, 8)

    def test_default_is_cifar_shape(self):
        data = cifar10_like(4, 2)
        assert data.x_train.shape == (4, 3, 32, 32)
