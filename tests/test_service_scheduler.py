"""ProofScheduler tests: batching, priorities, failure containment.

Fast tests use tiny generic chain circuits (no claim packaging); the
end-of-file integration test drives real ownership claims from the
session-scoped watermarked MLP through scheduler + registry.
"""

import threading
import time

import pytest

from repro.circuit import FixedPointFormat
from repro.engine import ProvingEngine
from repro.service import (
    ClaimRecord,
    ClaimRegistry,
    JobState,
    ProofScheduler,
    ProofTask,
)
from repro.service import wire


def _chain_synthesizer(depth, x=3):
    def synthesize(b):
        out = b.public_output("y")
        w = b.private_input("x", x)
        acc = w
        for _ in range(depth):
            acc = b.mul(acc, w)
        b.bind_output(out, acc + 1)

    return synthesize


def _task(claim_id, shape="chain-8", depth=8, priority=0, seed=None):
    return ProofTask(
        claim_id=claim_id,
        shape_key=shape,
        synthesize=_chain_synthesizer(depth),
        priority=priority,
        seed=seed,
        require_valid=False,
    )


@pytest.fixture
def scheduler(tmp_path):
    registry = ClaimRegistry(tmp_path)
    sched = ProofScheduler(ProvingEngine(), registry, max_batch=8)
    yield sched
    sched.stop(timeout=5.0)


class TestBatching:
    def test_same_shape_jobs_share_one_batch(self, scheduler):
        # Enqueue BEFORE starting: both jobs must land in one dispatch.
        scheduler.submit(_task("job-a", seed=1))
        scheduler.submit(_task("job-b", seed=2))
        scheduler.start()
        assert scheduler.wait("job-a", timeout=30) == JobState.DONE
        assert scheduler.wait("job-b", timeout=30) == JobState.DONE
        assert scheduler.stats.batches == 1
        assert scheduler.stats.batched_jobs == 2
        assert scheduler.stats.largest_batch == 2
        # One compile, one setup, one backend dispatch for the pair.
        assert scheduler.engine.stats.compile_misses == 1
        assert scheduler.engine.stats.compile_hits == 1
        assert scheduler.engine.stats.setup_misses == 1
        assert scheduler.engine.stats.proof_batches == 1
        assert scheduler.engine.stats.proofs == 2

    def test_different_shapes_get_separate_batches(self, scheduler):
        scheduler.submit(_task("job-a", shape="chain-6", depth=6))
        scheduler.submit(_task("job-b", shape="chain-9", depth=9))
        scheduler.start()
        scheduler.wait("job-a", timeout=30)
        scheduler.wait("job-b", timeout=30)
        assert scheduler.stats.batches == 2
        assert scheduler.stats.largest_batch == 1

    def test_max_batch_caps_a_dispatch(self, tmp_path):
        sched = ProofScheduler(
            ProvingEngine(), ClaimRegistry(tmp_path), max_batch=2
        )
        try:
            for i in range(3):
                sched.submit(_task(f"job-{i}", seed=i))
            sched.start()
            for i in range(3):
                assert sched.wait(f"job-{i}", timeout=30) == JobState.DONE
            assert sched.stats.batches == 2
            assert sched.stats.largest_batch == 2
        finally:
            sched.stop(timeout=5.0)

    def test_idempotent_resubmission(self, scheduler):
        scheduler.submit(_task("job-a", seed=1))
        scheduler.submit(_task("job-a", seed=1))
        assert scheduler.pending() == 1
        assert scheduler.stats.submitted == 1


class TestPriorities:
    def test_high_priority_shape_dispatches_first(self, scheduler):
        scheduler.submit(_task("low", shape="chain-6", depth=6, priority=0))
        scheduler.submit(_task("high", shape="chain-9", depth=9, priority=5))
        scheduler.start()
        scheduler.wait("low", timeout=30)
        scheduler.wait("high", timeout=30)
        assert scheduler.processed_order.index("high") < (
            scheduler.processed_order.index("low")
        )

    def test_fifo_within_a_priority(self, scheduler):
        for name in ("first", "second", "third"):
            scheduler.submit(_task(name, seed=1))
        scheduler.start()
        for name in ("first", "second", "third"):
            scheduler.wait(name, timeout=30)
        assert scheduler.processed_order == ["first", "second", "third"]

    def test_late_high_priority_head_is_in_the_first_batch(self, tmp_path):
        """Regression: with max_batch smaller than the same-shape queue
        depth, the sequence-ordered drain used to cut the late-submitted
        high-priority head out of the very batch it selected, proving
        lower-priority jobs first while the head sat queued."""
        sched = ProofScheduler(
            ProvingEngine(), ClaimRegistry(tmp_path), max_batch=2
        )
        try:
            for name in ("low-0", "low-1", "low-2"):
                sched.submit(_task(name, seed=1, priority=0))
            sched.submit(_task("high", seed=2, priority=5))  # submitted LAST
            sched.start()
            for name in ("low-0", "low-1", "low-2", "high"):
                assert sched.wait(name, timeout=60) == JobState.DONE
            # The head must lead the first dispatched batch for its shape.
            assert sched.processed_order[0] == "high"
            assert "high" in sched.processed_order[: sched.max_batch]
        finally:
            sched.stop(timeout=5.0)


class TestFailures:
    def test_synthesis_failure_marks_failed_not_batch(self, scheduler):
        def broken(b):
            raise OverflowError("weights do not fit the fixed-point format")

        scheduler.submit(_task("good", seed=1))
        scheduler.submit(
            ProofTask(
                claim_id="bad",
                shape_key="chain-8",
                synthesize=broken,
                require_valid=False,
            )
        )
        scheduler.start()
        assert scheduler.wait("good", timeout=30) == JobState.DONE
        assert scheduler.wait("bad", timeout=30) == JobState.FAILED
        assert "synthesis failed" in scheduler.error("bad")

    def test_head_failure_still_proves_the_rest(self, scheduler):
        def broken(b):
            raise OverflowError("boom")

        # The failing job is submitted FIRST, so it heads the batch and
        # the scheduler must fall through to compiling from a later job.
        scheduler.submit(
            ProofTask(claim_id="bad", shape_key="chain-8",
                      synthesize=broken, require_valid=False)
        )
        scheduler.submit(_task("good", seed=1))
        scheduler.start()
        assert scheduler.wait("bad", timeout=30) == JobState.FAILED
        assert scheduler.wait("good", timeout=30) == JobState.DONE

    def test_wait_timeout_raises(self, scheduler):
        scheduler.start()
        with pytest.raises(TimeoutError):
            scheduler.wait("never-submitted", timeout=0.2)


class TestReplicaContention:
    """Two schedulers over two registries sharing one root: the CAS
    lease must pick exactly one prover per claim."""

    def test_each_claim_is_proved_by_exactly_one_scheduler(self, tmp_path):
        registry_a = ClaimRegistry(tmp_path, owner_token="replica-a")
        claim_ids = [f"claim-{i}" for i in range(3)]
        for claim_id in claim_ids:
            registry_a.register(
                ClaimRecord(claim_id=claim_id, model_digest="m" * 64)
            )
        registry_b = ClaimRegistry(tmp_path, owner_token="replica-b")
        sched_a = ProofScheduler(ProvingEngine(), registry_a, max_batch=8)
        sched_b = ProofScheduler(ProvingEngine(), registry_b, max_batch=8)
        try:
            for i, claim_id in enumerate(claim_ids):
                sched_a.submit(_task(claim_id, seed=i))
                sched_b.submit(_task(claim_id, seed=i))
            sched_a.start()
            sched_b.start()
            outcomes = {}
            for claim_id in claim_ids:
                state_a = sched_a.wait(claim_id, timeout=60)
                state_b = sched_b.wait(claim_id, timeout=60)
                outcomes[claim_id] = (state_a, state_b)
            for claim_id, (state_a, state_b) in outcomes.items():
                assert {state_a, state_b} == {JobState.DONE, JobState.YIELDED}, (
                    f"{claim_id}: expected one winner and one yield, "
                    f"got {state_a}/{state_b}"
                )
                # The durable record reflects exactly one proving run.
                proving_events = [
                    e for e in registry_a.audit_entries(claim_id)
                    if e["event"] == "state" and e["state"] == JobState.PROVING
                ]
                assert len(proving_events) == 1
                assert registry_a.reload(claim_id).state == JobState.DONE
            assert sched_a.stats.done + sched_b.stats.done == len(claim_ids)
            assert sched_a.stats.yielded + sched_b.stats.yielded == len(claim_ids)
        finally:
            sched_a.stop(timeout=5.0)
            sched_b.stop(timeout=5.0)


class TestLeaseHeartbeat:
    """A single proof longer than the lease must keep its lease alive.

    The per-task refresh only runs at batch boundaries; these tests pin
    the renewal *heartbeat* that covers the inside of one long prove.
    """

    @staticmethod
    def _slow_task(claim_id, started=None, sleep_s=0.6):
        def synthesize(b):
            if started is not None:
                started.set()
            time.sleep(sleep_s)
            _chain_synthesizer(8)(b)

        return ProofTask(
            claim_id=claim_id,
            shape_key=f"slow-{claim_id}",
            synthesize=synthesize,
            seed=1,
            require_valid=False,
        )

    def test_heartbeat_renews_lease_during_long_prove(self, tmp_path):
        registry = ClaimRegistry(tmp_path, owner_token="replica-a")
        registry.register(ClaimRecord(claim_id="slow", model_digest="m" * 64))
        sched = ProofScheduler(
            ProvingEngine(),
            registry,
            lease_seconds=0.4,
            heartbeat_seconds=0.05,
        )
        sched.submit(self._slow_task("slow"))
        try:
            sched.start()
            assert sched.wait("slow", timeout=60) == JobState.DONE
        finally:
            sched.stop(timeout=5.0)
        # The 0.6s synthesis alone spans several heartbeat intervals.
        assert sched.stats.lease_renewals >= 2
        # Terminal state released the lease.
        assert registry.lease_owner("slow") is None

    def test_heartbeat_blocks_takeover_past_lease_expiry(self, tmp_path):
        registry_a = ClaimRegistry(tmp_path, owner_token="replica-a")
        registry_a.register(
            ClaimRecord(claim_id="contended", model_digest="m" * 64)
        )
        registry_b = ClaimRegistry(tmp_path, owner_token="replica-b")
        sched = ProofScheduler(
            ProvingEngine(),
            registry_a,
            lease_seconds=0.5,
            heartbeat_seconds=0.05,
        )
        started = threading.Event()
        sched.submit(self._slow_task("contended", started=started, sleep_s=1.5))
        try:
            sched.start()
            assert started.wait(timeout=30)
            # Well past the un-renewed lease's expiry, mid-prove: another
            # replica must still be refused the claim.
            time.sleep(0.9)
            assert sched.state("contended") == JobState.PROVING
            assert not registry_b.acquire("contended", lease_seconds=0.5)
            assert sched.wait("contended", timeout=60) == JobState.DONE
        finally:
            sched.stop(timeout=5.0)
        assert sched.stats.lease_renewals >= 2

    def test_without_heartbeat_lease_expires_mid_prove(self, tmp_path):
        # Contrast case pinning that the scenario above is real: with the
        # heartbeat disabled, the lease of a long single proof expires and
        # another replica can steal the claim mid-prove.
        registry_a = ClaimRegistry(tmp_path, owner_token="replica-a")
        registry_a.register(
            ClaimRecord(claim_id="stealable", model_digest="m" * 64)
        )
        registry_b = ClaimRegistry(tmp_path, owner_token="replica-b")
        sched = ProofScheduler(
            ProvingEngine(),
            registry_a,
            lease_seconds=0.3,
            heartbeat_seconds=0,
        )
        started = threading.Event()
        sched.submit(self._slow_task("stealable", started=started, sleep_s=1.2))
        try:
            sched.start()
            assert started.wait(timeout=30)
            time.sleep(0.7)
            assert registry_b.acquire("stealable", lease_seconds=60.0)
            assert registry_b.lease_owner("stealable") == "replica-b"
        finally:
            sched.stop(timeout=10.0)
        assert sched.stats.lease_renewals == 0


class TestOwnershipClaimBatch:
    """Real extraction circuits end to end through scheduler + registry."""

    def test_batch_proves_stores_and_mirrors(self, tmp_path, watermarked_mlp):
        from repro.zkrownn import (
            CircuitConfig,
            extraction_structure_key,
            extraction_synthesizer,
            model_digest,
        )

        model, keys, _ = watermarked_mlp
        config = CircuitConfig(
            theta=0.0, fixed_point=FixedPointFormat(frac_bits=14, total_bits=40)
        )
        shape_key = extraction_structure_key(model, keys, config)
        registry = ClaimRegistry(tmp_path)
        scheduler = ProofScheduler(ProvingEngine(), registry, max_batch=8)
        mdigest = model_digest(model, keys.embed_layer)
        try:
            for i, claim_id in enumerate(("claim-1", "claim-2")):
                registry.register(
                    ClaimRecord(claim_id=claim_id, model_digest=mdigest)
                )
                scheduler.submit(
                    ProofTask(
                        claim_id=claim_id,
                        shape_key=shape_key,
                        synthesize=extraction_synthesizer(model, keys, config),
                        model=model,
                        keys=keys,
                        config=config,
                        seed=100 + i,
                        setup_seed=7,
                    )
                )
            scheduler.start()
            assert scheduler.wait("claim-1", timeout=300) == JobState.DONE
            assert scheduler.wait("claim-2", timeout=300) == JobState.DONE

            # One batch, one compile, one setup for both claims.
            assert scheduler.stats.batches == 1
            assert scheduler.engine.stats.setup_misses == 1
            assert scheduler.engine.stats.proof_batches == 1

            # Registry mirrors: record state, timings, claim frame, VK.
            for claim_id in ("claim-1", "claim-2"):
                record = registry.get(claim_id)
                assert record.state == JobState.DONE
                assert record.circuit_digest
                assert record.timings["batch_size"] == 2.0
                claim = wire.decode_claim(registry.claim_bytes(claim_id))
                assert claim.model_sha256 == mdigest
                vk = wire.decode_verifying_key(
                    wire.encode_frame(
                        wire.MSG_VERIFYING_KEY,
                        registry.verifying_key_bytes(record.circuit_digest),
                    )
                )
                # The stored VK verifies the stored claim.
                from repro.zkrownn import OwnershipVerifier

                assert OwnershipVerifier(vk).verify(model, claim).accepted
            events = [e["event"] for e in registry.audit_entries("claim-1")]
            assert events[-1] == "proved" or "proved" in events
        finally:
            scheduler.stop(timeout=5.0)

    def test_invalid_watermark_fails_cleanly(self, tmp_path, watermarked_mlp):
        import numpy as np

        from repro.nn import mnist_mlp_scaled
        from repro.zkrownn import CircuitConfig, extraction_structure_key, \
            extraction_synthesizer

        _, keys, _ = watermarked_mlp
        # Same architecture, fresh random weights: the watermark will not
        # extract, so a require_valid job must fail, not publish.
        imposter = mnist_mlp_scaled(
            input_dim=16, hidden=16, rng=np.random.default_rng(987654)
        )
        config = CircuitConfig(
            theta=0.0, fixed_point=FixedPointFormat(frac_bits=14, total_bits=40)
        )
        registry = ClaimRegistry(tmp_path)
        scheduler = ProofScheduler(ProvingEngine(), registry, max_batch=4)
        try:
            scheduler.submit(
                ProofTask(
                    claim_id="imposter",
                    shape_key=extraction_structure_key(imposter, keys, config),
                    synthesize=extraction_synthesizer(imposter, keys, config),
                    model=imposter,
                    keys=keys,
                    config=config,
                )
            )
            scheduler.start()
            assert scheduler.wait("imposter", timeout=300) == JobState.FAILED
            assert "does not extract" in scheduler.error("imposter")
        finally:
            scheduler.stop(timeout=5.0)
