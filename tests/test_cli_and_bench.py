"""Tests for the CLI entry point and the benchmark harness plumbing."""

import pytest

from repro.bench.metrics import TABLE_HEADER, CircuitReport, format_table, measure_circuit
from repro.bench.table1 import (
    PAPER_TABLE1,
    SCALES,
    builders_for_scale,
    paper_scale_constraints,
)
from repro.circuit.builder import CircuitBuilder
from repro.cli import main


class TestCli:
    def test_cost_subcommand(self, capsys):
        assert main(["cost"]) == 0
        out = capsys.readouterr().out
        assert "MatMult" in out
        assert "MNIST-MLP" in out

    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_subcommand(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_inspect_subcommand(self, tmp_path, capsys):
        from repro.snark.keys import Proof
        from repro.curves.g1 import G1Point
        from repro.curves.g2 import G2Point
        from repro.zkrownn import OwnershipClaim

        proof = Proof(G1Point.generator(), G2Point.generator(),
                      G1Point.generator() * 2)
        claim = OwnershipClaim(
            proof_bytes=proof.to_bytes(),
            theta=0.125,
            wm_bits=8,
            embed_layer=1,
            model_sha256="ab" * 32,
            frac_bits=14,
            total_bits=40,
        )
        path = tmp_path / "claim.json"
        claim.save(path)
        assert main(["inspect", str(path)]) == 0
        out = capsys.readouterr().out
        assert "128 bytes" in out
        assert "theta = 0.125" in out
        assert "on curve" in out


class TestMeasureCircuit:
    def test_full_measurement(self):
        def build():
            b = CircuitBuilder("tiny")
            out = b.public_output("y")
            x = b.private_input("x", 3)
            b.bind_output(out, b.mul(x, x))
            return b

        report = measure_circuit("tiny", build, seed=3)
        assert report.verified
        assert report.proof_bytes == 128
        assert report.num_constraints == 2
        assert report.num_public_inputs == 1
        assert report.pk_bytes > 0
        assert report.vk_bytes > 0
        assert report.setup_seconds > 0
        assert report.prove_seconds > 0
        assert report.verify_seconds > 0

    def test_report_row_and_units(self):
        report = CircuitReport(
            name="x",
            num_constraints=1234,
            num_public_inputs=1,
            setup_seconds=1.0,
            pk_bytes=2 * 1024 * 1024,
            prove_seconds=0.5,
            proof_bytes=128,
            vk_bytes=2048,
            verify_seconds=0.01,
            verified=True,
        )
        assert report.pk_megabytes == 2.0
        assert report.vk_kilobytes == 2.0
        assert report.verify_milliseconds == 10.0
        assert report.row()[0] == "x"
        assert report.row()[-1] == "ok"

    def test_format_table_contains_all_rows(self):
        report = CircuitReport("abc", 1, 1, 0.1, 100, 0.1, 128, 100, 0.01, True)
        table = format_table([report, report])
        assert table.count("abc") == 2
        for header in TABLE_HEADER:
            assert header in table


class TestTable1Plumbing:
    def test_builders_cover_all_paper_rows(self):
        builders = builders_for_scale("tiny")
        assert set(builders) == set(PAPER_TABLE1)

    def test_all_tiny_builders_synthesize(self):
        for name, build in builders_for_scale("tiny").items():
            builder = build()
            builder.check()
            assert builder.cs.num_constraints > 0, name

    def test_paper_scale_counts_positive(self):
        counts = paper_scale_constraints()
        assert all(v > 0 for v in counts.values())
        # MatMult at 128x128x128 must dwarf ReLU at length 128.
        assert counts["MatMult"] > 100 * counts["ReLU"]

    def test_scales_are_consistent(self):
        for scale in SCALES.values():
            assert scale.mat_dim > 0
            assert scale.wm_bits > 0
            assert scale.mlp_triggers >= 1
            assert scale.cnn_triggers >= 1


# ------------------------------------------------------ tune / bench-report --


def _write_bench(path, name, *, tests=None, entries=None, field=None,
                 profile=None):
    import json

    payload = {
        "benchmark": name,
        "scale": "reduced",
        "test_seconds": tests or {},
        "entries": entries or {},
        "field_backend": field,
        "machine_profile": profile or {"loaded": False},
    }
    path.write_text(json.dumps(payload))
    return payload


class TestBenchReportCli:
    def test_trend_table_and_metrics(self, tmp_path, capsys):
        _write_bench(
            tmp_path / "BENCH_msm_kernels.json",
            "bench_msm_kernels",
            tests={"test_fast": 0.5, "test_slow": 2.0},
            entries={"numpy-buckets-n4096": {
                "numpy_vs_python_bucket_ratio": 1.15, "note": "x"}},
            field="numpy",
            profile={"loaded": True, "created_at": "2026-08-08"},
        )
        _write_bench(
            tmp_path / "BENCH_groth16.json",
            "bench_groth16",
            tests={"test_prove": 3.0},
        )
        assert main(["bench-report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "# Benchmark trend" in out
        assert "bench_msm_kernels" in out and "bench_groth16" in out
        assert "test_slow" in out  # slowest test surfaced
        assert "numpy" in out  # field backend column
        assert "# Key metrics" in out
        assert "numpy-buckets-n4096.numpy_vs_python_bucket_ratio" in out
        assert "1.15" in out

    def test_baseline_delta_section(self, tmp_path, capsys):
        before = tmp_path / "before"
        after = tmp_path / "after"
        before.mkdir()
        after.mkdir()
        _write_bench(before / "BENCH_x.json", "bench_x",
                     tests={"test_a": 2.0})
        _write_bench(after / "BENCH_x.json", "bench_x",
                     tests={"test_a": 1.0})
        assert main(
            ["bench-report", str(after), "--baseline", str(before)]
        ) == 0
        out = capsys.readouterr().out
        assert "# Before/after vs baseline" in out
        assert "-50.0%" in out

    def test_corrupt_files_skipped_not_fatal(self, tmp_path, capsys):
        (tmp_path / "BENCH_bad.json").write_text("{nope")
        _write_bench(tmp_path / "BENCH_ok.json", "bench_ok",
                     tests={"test_a": 1.0})
        assert main(["bench-report", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "bench_ok" in out
        assert "# Skipped files" in out

    def test_empty_directory_reports_nothing_found(self, tmp_path, capsys):
        assert main(["bench-report", str(tmp_path)]) == 0
        assert "no BENCH_*.json files found" in capsys.readouterr().out


class _StubTuner:
    """Drop-in for Tuner in CLI tests: canned result, no kernels."""

    def __init__(self, **kwargs):
        self.kwargs = kwargs

    def run(self):
        from repro.tuning.profile import MachineProfile
        from repro.tuning.tuner import TuningResult

        profile = MachineProfile(
            field_backend="python",
            compute_backend="serial",
            max_batch=2,
            pippenger_windows={"signed": [[512, 7]]},
            created_at="2026-08-08T00:00:00+00:00",
        )
        return TuningResult(
            profile=profile, baseline_seconds=2.0, tuned_seconds=1.0
        )


class TestTuneCli:
    @pytest.fixture(autouse=True)
    def _stub_tuner(self, monkeypatch):
        import repro.tuning.tuner as tuner_mod

        monkeypatch.setattr(tuner_mod, "Tuner", _StubTuner)

    def test_dry_run_prints_profile_without_writing(self, tmp_path, capsys):
        out_path = tmp_path / "profile.json"
        assert main(
            ["tune", "--quick", "--dry-run", "--out", str(out_path)]
        ) == 0
        out = capsys.readouterr().out
        assert not out_path.exists()
        assert '"field_backend": "python"' in out
        assert "2.000s default -> 1.000s tuned (2.00x)" in out

    def test_writes_profile_and_bench_json(self, tmp_path, capsys):
        import json

        from repro.tuning.profile import load_profile

        out_path = tmp_path / "profile.json"
        bench_path = tmp_path / "BENCH_tune.json"
        assert main(
            [
                "tune",
                "--quick",
                "--out",
                str(out_path),
                "--bench-json",
                str(bench_path),
            ]
        ) == 0
        capsys.readouterr()
        profile = load_profile(str(out_path))
        assert profile.field_backend == "python"
        assert profile.max_batch == 2
        assert profile.window_override(512) == 7
        payload = json.loads(bench_path.read_text())
        assert payload["benchmark"] == "bench_tune"
        assert payload["speedup"] == 2.0
