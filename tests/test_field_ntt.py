"""Tests for the NTT / evaluation-domain machinery."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.field.ntt import EvaluationDomain, intt, next_power_of_two, ntt
from repro.field.poly import Polynomial
from repro.field.prime import BN254_R as R
from repro.field.prime import Fr

small_coeffs = st.lists(
    st.integers(min_value=0, max_value=R - 1), min_size=1, max_size=16
)


class TestNextPowerOfTwo:
    @pytest.mark.parametrize(
        "n,expected",
        [(0, 1), (1, 1), (2, 2), (3, 4), (4, 4), (5, 8), (1023, 1024), (1024, 1024)],
    )
    def test_values(self, n, expected):
        assert next_power_of_two(n) == expected


class TestNttRoundtrip:
    @given(coeffs=small_coeffs)
    def test_intt_inverts_ntt(self, coeffs):
        n = next_power_of_two(len(coeffs))
        padded = coeffs + [0] * (n - len(coeffs))
        omega = Fr.root_of_unity(n).value if n > 1 else 1
        if n == 1:
            return
        assert intt(ntt(padded, omega), omega) == padded

    def test_ntt_size_must_be_power_of_two(self):
        omega = Fr.root_of_unity(4).value
        with pytest.raises(ValueError):
            ntt([1, 2, 3], omega)

    def test_ntt_matches_naive_evaluation(self):
        n = 8
        omega = Fr.root_of_unity(n).value
        coeffs = [3, 1, 4, 1, 5, 9, 2, 6]
        poly = Polynomial(coeffs)
        evals = ntt(coeffs, omega)
        for k in range(n):
            point = pow(omega, k, R)
            assert evals[k] == poly(point)


class TestEvaluationDomain:
    def test_size_rounds_up(self):
        assert EvaluationDomain(5).size == 8

    def test_fft_ifft_roundtrip(self):
        domain = EvaluationDomain(8)
        coeffs = [7, 0, 3, 0, 0, 0, 0, 1]
        assert domain.ifft(domain.fft(coeffs)) == coeffs

    def test_fft_matches_polynomial_evaluation(self):
        domain = EvaluationDomain(8)
        coeffs = [1, 2, 3]
        poly = Polynomial(coeffs)
        evals = domain.fft(coeffs)
        for point, value in zip(domain.elements(), evals):
            assert value == poly(point)

    def test_fft_rejects_oversized_polynomial(self):
        domain = EvaluationDomain(4)
        with pytest.raises(ValueError):
            domain.fft([1] * 5)

    def test_ifft_requires_full_evaluations(self):
        domain = EvaluationDomain(4)
        with pytest.raises(ValueError):
            domain.ifft([1, 2])

    def test_coset_fft_roundtrip(self):
        domain = EvaluationDomain(8)
        coeffs = [5, 4, 3, 2, 1, 0, 0, 9]
        assert domain.coset_ifft(domain.coset_fft(coeffs)) == coeffs

    def test_coset_fft_matches_shifted_evaluation(self):
        domain = EvaluationDomain(4)
        coeffs = [1, 1, 0, 2]
        poly = Polynomial(coeffs)
        evals = domain.coset_fft(coeffs)
        g = domain.coset_shift
        for k, point in enumerate(domain.elements()):
            assert evals[k] == poly(g * point % R)

    def test_vanishing_zero_on_domain(self):
        domain = EvaluationDomain(8)
        for point in domain.elements():
            assert domain.vanishing_at(point) == 0

    def test_vanishing_nonzero_on_coset(self):
        domain = EvaluationDomain(8)
        t = domain.vanishing_on_coset()
        assert t != 0
        g = domain.coset_shift
        for point in domain.elements():
            assert domain.vanishing_at(g * point % R) == t

    def test_elements_are_distinct(self):
        domain = EvaluationDomain(16)
        pts = domain.elements()
        assert len(set(pts)) == len(pts)

    def test_singleton_domain(self):
        domain = EvaluationDomain(1)
        assert domain.size == 1
        assert domain.fft([3]) == [3]
        assert domain.ifft([3]) == [3]
        assert domain.coset_ifft(domain.coset_fft([4])) == [4]

    def test_interpolation_matches_lagrange_reference(self):
        domain = EvaluationDomain(4)
        values = [10, 20, 30, 40]
        coeffs = domain.ifft(values)
        reference = Polynomial.interpolate(domain.elements(), values)
        assert Polynomial(coeffs) == reference
