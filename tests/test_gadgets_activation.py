"""Tests for zk ReLU and the Chebyshev sigmoid."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.circuit.builder import CircuitBuilder
from repro.circuit.fixedpoint import FixedPointFormat
from repro.gadgets.activation import (
    CHEBYSHEV_COEFFICIENTS,
    sigmoid_chebyshev_float,
    sigmoid_reference,
    zk_relu,
    zk_relu_vector,
    zk_sigmoid,
    zk_sigmoid_vector,
)

FMT = FixedPointFormat(frac_bits=16, total_bits=48)
HI_FMT = FixedPointFormat(frac_bits=32, total_bits=100)

reals = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


class TestRelu:
    @given(x=reals)
    def test_matches_numpy(self, x):
        b = CircuitBuilder("relu")
        w = b.private_input("x", FMT.encode(x))
        out = zk_relu(b, FMT, w)
        b.check()
        assert FMT.decode(out.value) == pytest.approx(max(0.0, x), abs=FMT.resolution())

    def test_zero_boundary(self):
        b = CircuitBuilder("relu")
        w = b.private_input("x", 0)
        assert zk_relu(b, FMT, w).value == 0

    def test_vector(self, nprng):
        xs = nprng.uniform(-3, 3, 6)
        b = CircuitBuilder("relu")
        ws = [b.private_input(f"x{i}", FMT.encode(v)) for i, v in enumerate(xs)]
        outs = zk_relu_vector(b, FMT, ws)
        b.check()
        got = np.array([FMT.decode(w.value) for w in outs])
        np.testing.assert_allclose(got, np.maximum(xs, 0), atol=FMT.resolution())


class TestChebyshevFloat:
    def test_coefficients_match_paper(self):
        assert CHEBYSHEV_COEFFICIENTS[0] == 0.2159198015
        assert CHEBYSHEV_COEFFICIENTS[-1] == 0.0000000072

    def test_midpoint(self):
        assert sigmoid_chebyshev_float(np.array(0.0)) == pytest.approx(0.5)

    def test_approximates_true_sigmoid(self):
        xs = np.linspace(-4, 4, 41)
        approx = sigmoid_chebyshev_float(xs)
        exact = sigmoid_reference(xs)
        assert np.abs(approx - exact).max() < 0.05

    def test_symmetry(self):
        # S(-x) = 1 - S(x): the polynomial is odd around 0.5.
        xs = np.linspace(0.1, 4, 10)
        np.testing.assert_allclose(
            sigmoid_chebyshev_float(-xs), 1 - sigmoid_chebyshev_float(xs), atol=1e-12
        )

    def test_lower_degrees_are_worse(self):
        xs = np.linspace(-4, 4, 81)
        exact = sigmoid_reference(xs)
        err3 = np.abs(sigmoid_chebyshev_float(xs, 3) - exact).max()
        err9 = np.abs(sigmoid_chebyshev_float(xs, 9) - exact).max()
        assert err9 < err3

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            sigmoid_chebyshev_float(np.array(1.0), degree=4)


class TestZkSigmoid:
    @pytest.mark.parametrize("x", [-4.0, -1.5, 0.0, 0.5, 2.0, 4.0])
    def test_matches_float_polynomial(self, x):
        b = CircuitBuilder("sig")
        w = b.private_input("x", HI_FMT.encode(x))
        out = zk_sigmoid(b, HI_FMT, w)
        b.check()
        expected = float(sigmoid_chebyshev_float(np.array(x)))
        assert HI_FMT.decode(out.value) == pytest.approx(expected, abs=1e-5)

    @pytest.mark.parametrize("degree", [1, 3, 5, 7, 9])
    def test_all_degrees_synthesize(self, degree):
        b = CircuitBuilder("sig")
        w = b.private_input("x", HI_FMT.encode(1.0))
        out = zk_sigmoid(b, HI_FMT, w, degree=degree)
        b.check()
        expected = float(sigmoid_chebyshev_float(np.array(1.0), degree))
        assert HI_FMT.decode(out.value) == pytest.approx(expected, abs=1e-4)

    def test_invalid_degree(self):
        b = CircuitBuilder("sig")
        w = b.private_input("x", 0)
        with pytest.raises(ValueError):
            zk_sigmoid(b, HI_FMT, w, degree=2)

    def test_constraint_count_grows_with_degree(self):
        def count(degree):
            b = CircuitBuilder("sig")
            w = b.private_input("x", HI_FMT.encode(1.0))
            zk_sigmoid(b, HI_FMT, w, degree=degree)
            return b.cs.num_constraints

        assert count(3) < count(9)

    def test_vector(self, nprng):
        xs = nprng.uniform(-3, 3, 4)
        b = CircuitBuilder("sig")
        ws = [b.private_input(f"x{i}", HI_FMT.encode(v)) for i, v in enumerate(xs)]
        outs = zk_sigmoid_vector(b, HI_FMT, ws)
        b.check()
        got = np.array([HI_FMT.decode(w.value) for w in outs])
        np.testing.assert_allclose(got, sigmoid_chebyshev_float(xs), atol=1e-4)

    def test_output_in_unit_interval_on_moderate_range(self, nprng):
        for x in nprng.uniform(-4, 4, 10):
            b = CircuitBuilder("sig")
            w = b.private_input("x", HI_FMT.encode(float(x)))
            out = zk_sigmoid(b, HI_FMT, w)
            assert -0.05 < HI_FMT.decode(out.value) < 1.05
