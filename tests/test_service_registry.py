"""ClaimRegistry tests: persistence, lifecycle, audit trail."""

import json
import threading

import pytest

from repro.service import ClaimRecord, ClaimRegistry
from repro.service.registry import RegistryError


def _record(claim_id="c" * 64, model_digest="m" * 64, **kwargs):
    return ClaimRecord(claim_id=claim_id, model_digest=model_digest, **kwargs)


class TestRecords:
    def test_register_get_round_trip(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.register(_record(priority=3, shape_key="shape-a"))
        record = registry.get("c" * 64)
        assert record.model_digest == "m" * 64
        assert record.priority == 3
        assert record.state == "queued"
        assert record.created_at > 0

    def test_register_is_idempotent(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        first = registry.register(_record())
        registry.update(first.claim_id, state="done")
        again = registry.register(_record())
        assert again.state == "done"  # existing record wins
        assert len(registry) == 1

    def test_get_unknown_raises(self, tmp_path):
        with pytest.raises(RegistryError):
            ClaimRegistry(tmp_path).get("nope")

    def test_update_rejects_unknown_field(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.register(_record())
        with pytest.raises(AttributeError):
            registry.update("c" * 64, no_such_field=1)

    def test_list_filters(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.register(_record(claim_id="a" * 64, model_digest="m1"))
        registry.register(_record(claim_id="b" * 64, model_digest="m2"))
        registry.update("b" * 64, state="done")
        assert {r.claim_id for r in registry.list()} == {"a" * 64, "b" * 64}
        assert [r.claim_id for r in registry.list(model_digest="m1")] == ["a" * 64]
        assert [r.claim_id for r in registry.list(state="done")] == ["b" * 64]

    def test_revoke_keeps_bytes_for_audit(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.register(_record())
        registry.store_claim_bytes("c" * 64, b"claim-frame-bytes")
        record = registry.revoke("c" * 64, "lost the dispute")
        assert record.state == "revoked"
        assert record.revoked_reason == "lost the dispute"
        assert registry.claim_bytes("c" * 64) == b"claim-frame-bytes"


class TestPersistence:
    def test_restart_restores_everything(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.register(_record(shape_key="shape-z"))
        registry.update("c" * 64, state="done", circuit_digest="d" * 64,
                        timings={"batch_prove_seconds": 1.5})
        registry.store_claim_bytes("c" * 64, b"the-claim")
        registry.store_verifying_key("d" * 64, b"the-vk")
        registry.store_model_bytes("m" * 64, b"the-model")
        del registry

        reopened = ClaimRegistry(tmp_path)  # simulated restart
        record = reopened.get("c" * 64)
        assert record.state == "done"
        assert record.circuit_digest == "d" * 64
        assert record.timings == {"batch_prove_seconds": 1.5}
        assert reopened.claim_bytes("c" * 64) == b"the-claim"
        assert reopened.verifying_key_bytes("d" * 64) == b"the-vk"
        assert reopened.model_bytes("m" * 64) == b"the-model"

    def test_torn_record_is_skipped_not_fatal(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.register(_record())
        (tmp_path / "claims" / "torn.json").write_text("{not json")
        reopened = ClaimRegistry(tmp_path)
        assert len(reopened) == 1

    def test_missing_payloads_raise(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.register(_record())
        with pytest.raises(RegistryError):
            registry.claim_bytes("c" * 64)
        with pytest.raises(RegistryError):
            registry.verifying_key_bytes("none")
        with pytest.raises(RegistryError):
            registry.model_bytes("none")


class TestAudit:
    def test_trail_records_lifecycle(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.register(_record())
        registry.update("c" * 64, state="proving")
        registry.update("c" * 64, state="done")
        registry.revoke("c" * 64, "dispute")
        events = [e["event"] for e in registry.audit_entries("c" * 64)]
        assert events == ["registered", "state", "state", "revoked"]

    def test_trail_survives_restart_and_filters(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.register(_record(claim_id="a" * 64))
        registry.register(_record(claim_id="b" * 64))
        reopened = ClaimRegistry(tmp_path)
        assert len(list(reopened.audit_entries())) == 2
        assert len(list(reopened.audit_entries("a" * 64))) == 1

    def test_garbage_lines_are_skipped(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.audit("custom", claim_id="x")
        with open(tmp_path / "audit.log", "a") as fh:
            fh.write("not-json\n")
        registry.audit("custom2", claim_id="x")
        assert len(list(registry.audit_entries())) == 2

    def test_entries_are_json_lines(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.audit("ev", claim_id="x", extra=1)
        line = (tmp_path / "audit.log").read_text().strip()
        entry = json.loads(line)
        assert entry["event"] == "ev" and entry["extra"] == 1


class TestConcurrency:
    def test_parallel_registration_is_consistent(self, tmp_path):
        registry = ClaimRegistry(tmp_path)

        def register(i):
            registry.register(_record(claim_id=f"{i:064d}"))
            registry.update(f"{i:064d}", state="done")

        threads = [threading.Thread(target=register, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(registry) == 16
        assert registry.counts()["done"] == 16
        assert registry.counts()["total"] == 16
