"""ClaimRegistry tests: persistence, lifecycle, audit trail."""

import json
import threading

import pytest

from repro.service import ClaimRecord, ClaimRegistry
from repro.service.registry import RegistryError


def _record(claim_id="c" * 64, model_digest="m" * 64, **kwargs):
    return ClaimRecord(claim_id=claim_id, model_digest=model_digest, **kwargs)


class TestRecords:
    def test_register_get_round_trip(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.register(_record(priority=3, shape_key="shape-a"))
        record = registry.get("c" * 64)
        assert record.model_digest == "m" * 64
        assert record.priority == 3
        assert record.state == "queued"
        assert record.created_at > 0

    def test_register_is_idempotent(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        first = registry.register(_record())
        registry.update(first.claim_id, state="done")
        again = registry.register(_record())
        assert again.state == "done"  # existing record wins
        assert len(registry) == 1

    def test_get_unknown_raises(self, tmp_path):
        with pytest.raises(RegistryError):
            ClaimRegistry(tmp_path).get("nope")

    def test_update_rejects_unknown_field(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.register(_record())
        with pytest.raises(AttributeError):
            registry.update("c" * 64, no_such_field=1)

    def test_list_filters(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.register(_record(claim_id="a" * 64, model_digest="m1"))
        registry.register(_record(claim_id="b" * 64, model_digest="m2"))
        registry.update("b" * 64, state="done")
        assert {r.claim_id for r in registry.list()} == {"a" * 64, "b" * 64}
        assert [r.claim_id for r in registry.list(model_digest="m1")] == ["a" * 64]
        assert [r.claim_id for r in registry.list(state="done")] == ["b" * 64]

    def test_revoke_keeps_bytes_for_audit(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.register(_record())
        registry.store_claim_bytes("c" * 64, b"claim-frame-bytes")
        record = registry.revoke("c" * 64, "lost the dispute")
        assert record.state == "revoked"
        assert record.revoked_reason == "lost the dispute"
        assert registry.claim_bytes("c" * 64) == b"claim-frame-bytes"


class TestPersistence:
    def test_restart_restores_everything(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.register(_record(shape_key="shape-z"))
        registry.update("c" * 64, state="done", circuit_digest="d" * 64,
                        timings={"batch_prove_seconds": 1.5})
        registry.store_claim_bytes("c" * 64, b"the-claim")
        registry.store_verifying_key("d" * 64, b"the-vk")
        registry.store_model_bytes("m" * 64, b"the-model")
        del registry

        reopened = ClaimRegistry(tmp_path)  # simulated restart
        record = reopened.get("c" * 64)
        assert record.state == "done"
        assert record.circuit_digest == "d" * 64
        assert record.timings == {"batch_prove_seconds": 1.5}
        assert reopened.claim_bytes("c" * 64) == b"the-claim"
        assert reopened.verifying_key_bytes("d" * 64) == b"the-vk"
        assert reopened.model_bytes("m" * 64) == b"the-model"

    def test_torn_record_is_skipped_not_fatal(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.register(_record())
        (tmp_path / "claims" / "torn.json").write_text("{not json")
        reopened = ClaimRegistry(tmp_path)
        assert len(reopened) == 1

    def test_missing_payloads_raise(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.register(_record())
        with pytest.raises(RegistryError):
            registry.claim_bytes("c" * 64)
        with pytest.raises(RegistryError):
            registry.verifying_key_bytes("none")
        with pytest.raises(RegistryError):
            registry.model_bytes("none")


class TestAudit:
    def test_trail_records_lifecycle(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.register(_record())
        registry.update("c" * 64, state="proving")
        registry.update("c" * 64, state="done")
        registry.revoke("c" * 64, "dispute")
        events = [e["event"] for e in registry.audit_entries("c" * 64)]
        assert events == ["registered", "state", "state", "revoked"]

    def test_trail_survives_restart_and_filters(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.register(_record(claim_id="a" * 64))
        registry.register(_record(claim_id="b" * 64))
        reopened = ClaimRegistry(tmp_path)
        assert len(list(reopened.audit_entries())) == 2
        assert len(list(reopened.audit_entries("a" * 64))) == 1

    def test_garbage_lines_are_skipped(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.audit("custom", claim_id="x")
        with open(tmp_path / "audit.log", "a") as fh:
            fh.write("not-json\n")
        registry.audit("custom2", claim_id="x")
        assert len(list(registry.audit_entries())) == 2

    def test_entries_are_json_lines(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.audit("ev", claim_id="x", extra=1)
        line = (tmp_path / "audit.log").read_text().strip()
        entry = json.loads(line)
        assert entry["event"] == "ev" and entry["extra"] == 1


class TestConcurrency:
    def test_parallel_registration_is_consistent(self, tmp_path):
        registry = ClaimRegistry(tmp_path)

        def register(i):
            registry.register(_record(claim_id=f"{i:064d}"))
            registry.update(f"{i:064d}", state="done")

        threads = [threading.Thread(target=register, args=(i,)) for i in range(16)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(registry) == 16
        assert registry.counts()["done"] == 16
        assert registry.counts()["total"] == 16

    def test_reads_never_see_torn_multi_field_updates(self, tmp_path):
        """get/list return snapshots: a reader can never observe a
        half-applied multi-field update (the PR-3 bug returned the live
        mutated record)."""
        registry = ClaimRegistry(tmp_path)
        registry.register(_record())
        stop = threading.Event()
        torn = []

        def writer():
            i = 0
            while not stop.is_set():
                # state and error always move together; observing a
                # mismatched pair means a torn read.
                registry.update("c" * 64, state=f"s-{i}", error=f"e-{i}")
                i += 1

        def reader():
            while not stop.is_set():
                for record in [registry.get("c" * 64)] + registry.list():
                    if record.state.split("-")[-1] != record.error.split("-")[-1]:
                        torn.append((record.state, record.error))

        threads = [threading.Thread(target=writer)] + [
            threading.Thread(target=reader) for _ in range(3)
        ]
        for t in threads:
            t.start()
        import time as _time

        _time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join()
        assert torn == []

    def test_returned_records_are_copies(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.register(_record())
        snapshot = registry.get("c" * 64)
        snapshot.state = "mutated-by-caller"
        snapshot.timings["injected"] = 1.0
        fresh = registry.get("c" * 64)
        assert fresh.state == "queued"
        assert fresh.timings == {}


class TestSchemaEvolution:
    def test_unknown_fields_survive_the_round_trip(self, tmp_path):
        """A record written by a newer schema version (extra fields) must
        load, keep its extras, and write them back -- not be dropped as
        torn/foreign (the PR-3 bug)."""
        registry = ClaimRegistry(tmp_path)
        registry.register(_record())
        path = tmp_path / "claims" / ("c" * 64 + ".json")
        data = json.loads(path.read_text())
        data["from_the_future"] = {"new": "field"}
        data["another_new_field"] = 7
        path.write_text(json.dumps(data))

        reopened = ClaimRegistry(tmp_path)
        assert len(reopened) == 1
        record = reopened.get("c" * 64)
        assert record.extra == {
            "from_the_future": {"new": "field"},
            "another_new_field": 7,
        }
        # A rewrite by this (older) version preserves the foreign fields.
        reopened.update("c" * 64, state="done")
        rewritten = json.loads(path.read_text())
        assert rewritten["from_the_future"] == {"new": "field"}
        assert rewritten["another_new_field"] == 7
        assert rewritten["state"] == "done"

    def test_owner_token_field_loads_from_disk(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.register(_record())
        registry.update("c" * 64, owner_token="replica-a")
        reopened = ClaimRegistry(tmp_path)
        assert reopened.get("c" * 64).owner_token == "replica-a"

    def test_skipped_records_are_logged_not_silent(self, tmp_path, caplog):
        registry = ClaimRegistry(tmp_path)
        registry.register(_record())
        (tmp_path / "claims" / "torn.json").write_text("{not json")
        with caplog.at_level("WARNING", logger="repro.service.registry"):
            reopened = ClaimRegistry(tmp_path)
        assert len(reopened) == 1
        assert any("torn.json" in message for message in caplog.messages)


class TestOwnershipLeases:
    def test_exactly_one_replica_acquires(self, tmp_path):
        a = ClaimRegistry(tmp_path, owner_token="replica-a")
        b = ClaimRegistry(tmp_path, owner_token="replica-b")
        assert a.acquire("claim-x") is True
        assert b.acquire("claim-x") is False
        assert a.lease_owner("claim-x") == "replica-a"
        assert b.lease_owner("claim-x") == "replica-a"

    def test_reacquire_by_owner_refreshes(self, tmp_path):
        a = ClaimRegistry(tmp_path, owner_token="replica-a")
        assert a.acquire("claim-x")
        assert a.acquire("claim-x")  # idempotent for the holder

    def test_release_frees_the_claim(self, tmp_path):
        a = ClaimRegistry(tmp_path, owner_token="replica-a")
        b = ClaimRegistry(tmp_path, owner_token="replica-b")
        assert a.acquire("claim-x")
        a.release("claim-x")
        assert a.lease_owner("claim-x") is None
        assert b.acquire("claim-x") is True

    def test_release_by_non_owner_is_a_no_op(self, tmp_path):
        a = ClaimRegistry(tmp_path, owner_token="replica-a")
        b = ClaimRegistry(tmp_path, owner_token="replica-b")
        assert a.acquire("claim-x")
        b.release("claim-x")
        assert a.lease_owner("claim-x") == "replica-a"

    def test_expired_lease_can_be_taken_over(self, tmp_path):
        import time as _time

        a = ClaimRegistry(tmp_path, owner_token="replica-a")
        b = ClaimRegistry(tmp_path, owner_token="replica-b")
        assert a.acquire("claim-x", lease_seconds=0.05)
        _time.sleep(0.1)
        assert a.lease_owner("claim-x") is None  # expired
        assert b.acquire("claim-x") is True
        assert b.lease_owner("claim-x") == "replica-b"

    def test_contended_acquisition_has_exactly_one_winner(self, tmp_path):
        """Threaded CAS: for each of N claims, exactly one of two
        registries sharing the root wins."""
        a = ClaimRegistry(tmp_path, owner_token="replica-a")
        b = ClaimRegistry(tmp_path, owner_token="replica-b")
        claims = [f"claim-{i}" for i in range(24)]
        wins = {"replica-a": set(), "replica-b": set()}

        def contend(registry, name):
            for claim_id in claims:
                if registry.acquire(claim_id):
                    wins[name].add(claim_id)

        threads = [
            threading.Thread(target=contend, args=(a, "replica-a")),
            threading.Thread(target=contend, args=(b, "replica-b")),
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert wins["replica-a"] | wins["replica-b"] == set(claims)
        assert wins["replica-a"] & wins["replica-b"] == set()

    def test_acquire_records_the_owner_on_the_record(self, tmp_path):
        registry = ClaimRegistry(tmp_path, owner_token="replica-a")
        registry.register(_record())
        assert registry.acquire("c" * 64)
        assert registry.get("c" * 64).owner_token == "replica-a"

    def test_register_sees_records_written_by_another_replica(self, tmp_path):
        """A replica must not overwrite a record another replica created
        (and possibly already proved) after this replica loaded."""
        b = ClaimRegistry(tmp_path, owner_token="replica-b")  # loads empty
        a = ClaimRegistry(tmp_path, owner_token="replica-a")
        a.register(_record())
        a.update("c" * 64, state="done", circuit_digest="d" * 64)

        returned = b.register(_record())  # same claim id, fresh record
        assert returned.state == "done"  # the existing record wins
        assert returned.circuit_digest == "d" * 64
        assert a.reload("c" * 64).state == "done"  # nothing was clobbered


class TestPersistedRequests:
    def test_store_read_discard(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.store_request_bytes("claim-x", b"request-frame")
        assert registry.has_request("claim-x")
        assert registry.request_bytes("claim-x") == b"request-frame"
        registry.discard_request_bytes("claim-x")
        assert not registry.has_request("claim-x")
        with pytest.raises(RegistryError):
            registry.request_bytes("claim-x")
        registry.discard_request_bytes("claim-x")  # idempotent

    def test_frames_survive_restart(self, tmp_path):
        ClaimRegistry(tmp_path).store_request_bytes("claim-x", b"frame")
        assert ClaimRegistry(tmp_path).request_bytes("claim-x") == b"frame"

    def test_frames_are_permission_gated(self, tmp_path):
        import os
        import stat

        registry = ClaimRegistry(tmp_path)
        registry.store_request_bytes("claim-x", b"prover-secrets")
        mode = stat.S_IMODE(os.stat(tmp_path / "requests" / "claim-x.req").st_mode)
        assert mode == 0o600
        dir_mode = stat.S_IMODE(os.stat(tmp_path / "requests").st_mode)
        assert dir_mode == 0o700


class TestKeyTransparencyLog:
    def test_publication_appends_a_verifiable_entry(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        assert registry.store_verifying_key("d" * 64, b"vk-bytes") is True
        entries = registry.key_log_entries()
        assert len(entries) == 1
        assert entries[0]["circuit_digest"] == "d" * 64
        assert registry.verify_key_log() == 1

    def test_republication_is_excluded_and_not_logged(self, tmp_path):
        a = ClaimRegistry(tmp_path)
        b = ClaimRegistry(tmp_path)
        assert a.store_verifying_key("d" * 64, b"vk-bytes") is True
        assert b.store_verifying_key("d" * 64, b"other-bytes") is False
        assert a.verifying_key_bytes("d" * 64) == b"vk-bytes"  # first wins
        assert len(a.key_log_entries()) == 1

    def test_chain_links_multiple_entries(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.store_verifying_key("a" * 64, b"vk-a")
        registry.store_verifying_key("b" * 64, b"vk-b")
        entries = registry.key_log_entries()
        assert [e["seq"] for e in entries] == [0, 1]
        assert entries[1]["prev"] == entries[0]["entry_hash"]
        assert registry.verify_key_log() == 2
        assert registry.vk_digests() == ["a" * 64, "b" * 64]

    def test_tampered_entry_is_detected(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.store_verifying_key("d" * 64, b"vk-bytes")
        log_path = tmp_path / "keylog.jsonl"
        entry = json.loads(log_path.read_text())
        entry["circuit_digest"] = "e" * 64
        log_path.write_text(json.dumps(entry) + "\n")
        with pytest.raises(RegistryError, match="hash mismatch"):
            registry.verify_key_log()

    def test_swapped_vk_bytes_are_detected(self, tmp_path):
        registry = ClaimRegistry(tmp_path)
        registry.store_verifying_key("d" * 64, b"vk-bytes")
        (tmp_path / "vks" / ("d" * 64 + ".vk")).write_bytes(b"swapped")
        with pytest.raises(RegistryError, match="does not match"):
            registry.verify_key_log()

    def test_log_survives_restart_and_verifies(self, tmp_path):
        ClaimRegistry(tmp_path).store_verifying_key("d" * 64, b"vk-bytes")
        assert ClaimRegistry(tmp_path).verify_key_log() == 1
