"""Cross-layer property tests (hypothesis).

Random structures flowing through multiple layers of the stack: random
linear circuits through Groth16, random values through fixed-point
gadgets, adversarial byte strings through the decoders.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit.builder import CircuitBuilder
from repro.circuit.fixedpoint import FixedPointFormat
from repro.curves.serialize import PointDecodingError, g1_from_bytes, g2_from_bytes
from repro.field.prime import BN254_R as R
from repro.snark import prove, setup, verify

FMT = FixedPointFormat(frac_bits=12, total_bits=36)


class TestRandomCircuitsThroughGroth16:
    @settings(max_examples=3, deadline=None)
    @given(
        xs=st.lists(
            st.integers(min_value=-1000, max_value=1000), min_size=2, max_size=4
        ),
        data=st.data(),
    )
    def test_random_polynomial_circuit_roundtrip(self, xs, data):
        """Random products/sums of private inputs prove and verify."""
        b = CircuitBuilder("random")
        out = b.public_output("out")
        wires = [b.private_input(f"x{i}", v) for i, v in enumerate(xs)]
        acc = wires[0]
        for w in wires[1:]:
            if data.draw(st.booleans()):
                acc = b.mul(acc, w)
            else:
                acc = acc + w
        b.bind_output(out, acc)
        b.check()
        kp = setup(b.cs, seed=1)
        proof = prove(kp.proving_key, b.cs, b.assignment, seed=2)
        assert verify(kp.verifying_key, b.public_values(), proof)
        # And the negated instance must fail.
        wrong = [(b.public_values()[0] + 1) % R]
        assert not verify(kp.verifying_key, wrong, proof)


class TestFixedPointProperties:
    @given(
        x=st.floats(min_value=-50, max_value=50, allow_nan=False),
        y=st.floats(min_value=-50, max_value=50, allow_nan=False),
    )
    def test_mul_commutes_in_circuit(self, x, y):
        b = CircuitBuilder("fp")
        wx = b.private_input("x", FMT.encode(x))
        wy = b.private_input("y", FMT.encode(y))
        xy = FMT.mul(b, wx, wy)
        yx = FMT.mul(b, wy, wx)
        assert abs(FMT.decode(xy.value) - FMT.decode(yx.value)) <= 2 * FMT.resolution()

    @given(x=st.floats(min_value=-50, max_value=50, allow_nan=False))
    def test_relu_idempotent(self, x):
        from repro.gadgets.activation import zk_relu

        b = CircuitBuilder("fp")
        w = b.private_input("x", FMT.encode(x))
        once = zk_relu(b, FMT, w)
        twice = zk_relu(b, FMT, once)
        assert once.value == twice.value
        b.check()

    @given(
        values=st.lists(
            st.floats(min_value=-10, max_value=10, allow_nan=False),
            min_size=2,
            max_size=6,
        )
    )
    def test_max_of_ge_all_elements(self, values):
        from repro.gadgets.pooling import zk_max_of

        b = CircuitBuilder("max")
        ws = [b.private_input(f"x{i}", FMT.encode(v)) for i, v in enumerate(values)]
        m = zk_max_of(b, FMT, ws)
        decoded = FMT.decode(m.value)
        for v in values:
            assert decoded >= v - FMT.resolution()
        b.check()

    @given(
        bits=st.lists(st.integers(min_value=0, max_value=1), min_size=1, max_size=12)
    )
    def test_ber_self_comparison_always_valid(self, bits):
        from repro.gadgets.ber import zk_ber

        b = CircuitBuilder("ber")
        wm = [b.allocate_bit(f"w{i}", v) for i, v in enumerate(bits)]
        ext = [b.allocate_bit(f"e{i}", v) for i, v in enumerate(bits)]
        result = zk_ber(b, wm, ext, theta=0.0)
        assert result.valid.value == 1
        assert result.mismatches.value == 0
        b.check()


class TestDecoderFuzz:
    @given(data=st.binary(min_size=32, max_size=32))
    def test_g1_decoder_never_crashes(self, data):
        """Random bytes either decode to a valid on-curve point or raise
        PointDecodingError -- never a different exception, never an
        off-curve point."""
        try:
            point = g1_from_bytes(data)
        except PointDecodingError:
            return
        assert point.is_on_curve()

    @given(data=st.binary(min_size=64, max_size=64))
    def test_g2_decoder_never_crashes(self, data):
        try:
            point = g2_from_bytes(data)
        except PointDecodingError:
            return
        assert point.is_on_curve()


class TestWitnessConsistency:
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=10, deadline=None)
    def test_resynthesis_is_deterministic(self, seed):
        """Building the same gadget twice with the same inputs yields the
        identical constraint system and witness."""
        rng = np.random.default_rng(seed)
        values = rng.uniform(-1, 1, 4)

        def build():
            b = CircuitBuilder("det")
            ws = [b.private_input(f"x{i}", FMT.encode(v)) for i, v in enumerate(values)]
            FMT.inner_product(b, ws, ws)
            return b

        b1, b2 = build(), build()
        assert b1.assignment == b2.assignment
        assert b1.structure_digest() == b2.structure_digest()
