"""Soundness of hint-based gadgets: forged witnesses must not satisfy.

Completeness (honest witnesses satisfy) is tested everywhere else.  These
tests attack the other direction: several gadgets allocate *unconstrained
hint variables* (bit decompositions, truncation quotients/remainders,
inverse hints) that a malicious prover controls.  Groth16 will happily
prove any satisfying assignment, so the constraints themselves must pin
every hint down.  Each test takes a valid assignment and perturbs hint
variables, asserting the constraint system rejects.
"""

import numpy as np
import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.fixedpoint import FixedPointFormat
from repro.field.prime import BN254_R as R
from repro.snark.errors import UnsatisfiedWitness

FMT = FixedPointFormat(frac_bits=8, total_bits=24)


def perturbations_reject(builder: CircuitBuilder, start_index: int = 1):
    """Yield (index, delta) single-variable perturbations that must fail."""
    base = list(builder.assignment)
    builder.cs.check_satisfied(base)
    rejected = 0
    total = 0
    for index in range(start_index, len(base)):
        for delta in (1, R - 1):
            mutated = list(base)
            mutated[index] = (mutated[index] + delta) % R
            total += 1
            if not builder.cs.is_satisfied(mutated):
                rejected += 1
    return rejected, total


class TestBitDecompositionSoundness:
    def test_any_bit_flip_rejected(self):
        b = CircuitBuilder("bits")
        x = b.private_input("x", 0b1010)
        bits = b.to_bits(x, 4)
        base = list(b.assignment)
        for bit in bits:
            index = bit.lc.as_single_variable()
            mutated = list(base)
            mutated[index] = 1 - mutated[index]
            assert not b.cs.is_satisfied(mutated)

    def test_non_boolean_bit_rejected(self):
        b = CircuitBuilder("bits")
        x = b.private_input("x", 5)
        bits = b.to_bits(x, 4)
        index = bits[0].lc.as_single_variable()
        mutated = list(b.assignment)
        # Try to satisfy the recomposition with a non-boolean "bit":
        # x = 5, claim bit0 = 5 and zero the rest. Booleanity must reject.
        mutated[index] = 5
        for other in bits[1:]:
            mutated[other.lc.as_single_variable()] = 0
        assert not b.cs.is_satisfied(mutated)


class TestTruncationSoundness:
    def test_inflated_quotient_rejected(self):
        """A prover rounding in their favor (quotient + 1) must fail."""
        b = CircuitBuilder("trunc")
        x = b.private_input("x", 1000)
        q = b.truncate(x, 4, 16)
        q_index = q.lc.as_single_variable()
        mutated = list(b.assignment)
        mutated[q_index] = (mutated[q_index] + 1) % R
        assert not b.cs.is_satisfied(mutated)

    def test_every_single_variable_perturbation_rejected(self):
        """No lone witness variable in a truncation gadget is free."""
        b = CircuitBuilder("trunc")
        x = b.private_input("x", -777)
        b.truncate(x, 3, 16)
        rejected, total = perturbations_reject(b, start_index=2)
        assert rejected == total

    def test_division_remainder_shift_rejected(self):
        """(q, rem) -> (q - 1, rem + divisor) satisfies the linear relation
        but must be killed by the remainder range check."""
        b = CircuitBuilder("div")
        x = b.private_input("x", 22)
        q = b.div_floor_const(x, 5, 16)  # q = 4, rem = 2
        q_index = q.lc.as_single_variable()
        base = list(b.assignment)
        mutated = list(base)
        mutated[q_index] = (mutated[q_index] - 1) % R
        # rem variable was allocated right after q.
        rem_index = q_index + 1
        mutated[rem_index] = (mutated[rem_index] + 5) % R
        # The linear equation x = 5q + rem still holds...
        lhs = (5 * mutated[q_index] + mutated[rem_index]) % R
        assert lhs == 22
        # ...but range constraints reject the forged split.
        assert not b.cs.is_satisfied(mutated)


class TestComparisonSoundness:
    def test_sign_bit_cannot_be_flipped(self):
        b = CircuitBuilder("cmp")
        x = b.private_input("x", -3)
        sign = b.is_nonnegative(x, 8)
        assert sign.value == 0
        index = sign.lc.as_single_variable()
        mutated = list(b.assignment)
        mutated[index] = 1
        assert not b.cs.is_satisfied(mutated)

    def test_is_zero_cannot_claim_nonzero_is_zero(self):
        b = CircuitBuilder("isz")
        x = b.private_input("x", 7)
        out = b.is_zero(x)
        assert out.value == 0
        index = out.lc.as_single_variable()
        mutated = list(b.assignment)
        mutated[index] = 1
        assert not b.cs.is_satisfied(mutated)

    def test_is_zero_cannot_claim_zero_is_nonzero(self):
        b = CircuitBuilder("isz")
        x = b.private_input("x", 0)
        out = b.is_zero(x)
        assert out.value == 1
        index = out.lc.as_single_variable()
        for forged_inverse in (0, 1, 12345):
            mutated = list(b.assignment)
            mutated[index] = 0
            # also try to help the forgery along via the inverse hint
            mutated[index - 1] = forged_inverse
            assert not b.cs.is_satisfied(mutated)


class TestReluThresholdSoundness:
    def test_relu_output_is_pinned(self):
        from repro.gadgets.activation import zk_relu

        b = CircuitBuilder("relu")
        x = b.private_input("x", FMT.encode(-1.5))
        out = zk_relu(b, FMT, x)
        assert out.value == 0
        rejected, total = perturbations_reject(b, start_index=2)
        assert rejected == total

    def test_threshold_bit_is_pinned(self):
        from repro.gadgets.threshold import zk_hard_threshold

        b = CircuitBuilder("thr")
        x = b.private_input("x", FMT.encode(0.3))
        bit = zk_hard_threshold(b, FMT, x, beta=0.5)
        assert bit.value == 0
        index = bit.lc.as_single_variable()
        mutated = list(b.assignment)
        mutated[index] = 1
        assert not b.cs.is_satisfied(mutated)


class TestBerSoundness:
    def test_validity_bit_cannot_be_forged(self):
        """The core ZKROWNN statement: a prover whose watermark does NOT
        match cannot flip the BER validity bit by witness manipulation."""
        from repro.gadgets.ber import zk_ber

        b = CircuitBuilder("ber")
        wm = [b.allocate_bit(f"w{i}", v) for i, v in enumerate([1, 0, 1, 0])]
        ext = [b.allocate_bit(f"e{i}", v) for i, v in enumerate([0, 1, 0, 1])]
        result = zk_ber(b, wm, ext, theta=0.0)
        assert result.valid.value == 0
        index = result.valid.lc.as_single_variable()
        mutated = list(b.assignment)
        mutated[index] = 1
        assert not b.cs.is_satisfied(mutated)

    def test_every_perturbation_of_failing_ber_rejected(self):
        from repro.gadgets.ber import zk_ber

        b = CircuitBuilder("ber")
        wm = [b.allocate_bit(f"w{i}", v) for i, v in enumerate([1, 1])]
        ext = [b.allocate_bit(f"e{i}", v) for i, v in enumerate([0, 1])]
        zk_ber(b, wm, ext, theta=0.0)
        rejected, total = perturbations_reject(b, start_index=1)
        assert rejected == total


class TestExtractionOutputSoundness:
    def test_valid_output_cannot_be_forged_on_unrelated_model(
        self, watermarked_mlp
    ):
        """End to end: for a model without the watermark, no single-variable
        change to the public 'valid' output satisfies the circuit."""
        from repro.circuit import FixedPointFormat as FPF
        from repro.nn import mnist_mlp_scaled
        from repro.zkrownn import CircuitConfig, build_extraction_circuit

        _, keys, _ = watermarked_mlp
        fresh = mnist_mlp_scaled(
            input_dim=16, hidden=16, rng=np.random.default_rng(9)
        )
        config = CircuitConfig(
            theta=0.0, fixed_point=FPF(frac_bits=14, total_bits=40)
        )
        circuit = build_extraction_circuit(fresh, keys, config)
        assert not circuit.valid
        mutated = list(circuit.assignment)
        mutated[circuit.valid_output.index] = 1
        assert not circuit.constraint_system.is_satisfied(mutated)
