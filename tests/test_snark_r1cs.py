"""Tests for the R1CS constraint-system representation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.field.prime import BN254_R as R
from repro.snark.errors import UnsatisfiedWitness
from repro.snark.r1cs import ONE_INDEX, ConstraintSystem, LinearCombination as LC

small_ints = st.integers(min_value=-100, max_value=100)


class TestLinearCombination:
    def test_variable(self):
        lc = LC.variable(3)
        assert lc.terms == {3: 1}

    def test_constant(self):
        lc = LC.constant(7)
        assert lc.terms == {ONE_INDEX: 7}

    def test_zero_coefficients_dropped(self):
        assert LC({1: 0}).is_zero()

    def test_add_merges(self):
        lc = LC.variable(1) + LC.variable(2) + LC.variable(1)
        assert lc.terms == {1: 2, 2: 1}

    def test_add_cancels_to_zero(self):
        lc = LC.variable(1) - LC.variable(1)
        assert lc.is_zero()

    def test_scale(self):
        assert LC.variable(1).scale(5).terms == {1: 5}

    def test_scale_by_zero(self):
        assert LC.variable(1).scale(0).is_zero()

    def test_evaluate(self):
        lc = LC({0: 2, 1: 3})
        assert lc.evaluate([1, 10]) == 32

    @given(a=small_ints, b=small_ints)
    def test_evaluate_linear(self, a, b):
        lc1 = LC.variable(1, a)
        lc2 = LC.variable(1, b)
        assignment = [1, 7]
        combined = lc1 + lc2
        assert combined.evaluate(assignment) == (
            lc1.evaluate(assignment) + lc2.evaluate(assignment)
        ) % R

    def test_as_single_variable(self):
        assert LC.variable(4).as_single_variable() == 4
        assert LC.variable(4, 2).as_single_variable() is None
        assert (LC.variable(1) + LC.variable(2)).as_single_variable() is None

    def test_negative_coefficients_wrap(self):
        lc = LC({1: -1})
        assert lc.terms[1] == R - 1

    def test_repr(self):
        assert "v1" in repr(LC.variable(1))


class TestAllocation:
    def test_layout(self):
        cs = ConstraintSystem()
        a = cs.allocate_public("a")
        b = cs.allocate_public("b")
        c = cs.allocate_private("c")
        assert (a, b, c) == (1, 2, 3)
        assert cs.num_public == 2
        assert cs.num_private == 1
        assert cs.num_variables == 4

    def test_public_after_private_rejected(self):
        cs = ConstraintSystem()
        cs.allocate_private("w")
        with pytest.raises(ValueError):
            cs.allocate_public("x")

    def test_names_recorded(self):
        cs = ConstraintSystem()
        cs.allocate_public("the_input")
        assert "the_input" in cs.variable_names

    def test_default_names(self):
        cs = ConstraintSystem()
        idx = cs.allocate_private()
        assert cs.variable_names[idx].startswith("aux_")


class TestSatisfaction:
    def _simple(self):
        # x * x = y
        cs = ConstraintSystem()
        y = cs.allocate_public("y")
        x = cs.allocate_private("x")
        cs.enforce(LC.variable(x), LC.variable(x), LC.variable(y))
        return cs

    def test_satisfied(self):
        cs = self._simple()
        assert cs.is_satisfied([1, 9, 3])

    def test_unsatisfied(self):
        cs = self._simple()
        assert not cs.is_satisfied([1, 10, 3])

    def test_check_raises_with_constraint_index(self):
        cs = self._simple()
        with pytest.raises(UnsatisfiedWitness, match="constraint 0"):
            cs.check_satisfied([1, 10, 3])

    def test_wrong_length_rejected(self):
        cs = self._simple()
        with pytest.raises(UnsatisfiedWitness, match="entries"):
            cs.check_satisfied([1, 9])

    def test_one_must_be_one(self):
        cs = self._simple()
        with pytest.raises(UnsatisfiedWitness, match="constant 1"):
            cs.check_satisfied([2, 9, 3])

    def test_empty_system_satisfied(self):
        cs = ConstraintSystem()
        assert cs.is_satisfied([1])

    def test_public_inputs_of(self):
        cs = self._simple()
        assert cs.public_inputs_of([1, 9, 3]) == [9]


class TestStats:
    def test_stats(self):
        cs = ConstraintSystem()
        y = cs.allocate_public("y")
        x = cs.allocate_private("x")
        cs.enforce(LC.variable(x), LC.variable(x), LC.variable(y))
        stats = cs.stats()
        assert stats["constraints"] == 1
        assert stats["variables"] == 3
        assert stats["public_inputs"] == 1
        assert stats["nonzero_coefficients"] == 3

    def test_repr(self):
        assert "ConstraintSystem" in repr(ConstraintSystem())
