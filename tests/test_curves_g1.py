"""Tests for G1 arithmetic (affine wrapper and raw Jacobian fast path)."""

import pytest

from repro.curves.bn254 import R
from repro.curves.g1 import (
    G1_INFINITY_JAC,
    G1Point,
    jac_add,
    jac_add_mixed,
    jac_double,
    jac_is_infinity,
    jac_neg,
    jac_scalar_mul,
    jac_to_affine,
)

G = G1Point.generator()


class TestGroupLaw:
    def test_generator_on_curve(self):
        assert G.is_on_curve()

    def test_identity(self):
        inf = G1Point.infinity()
        assert G + inf == G
        assert inf + G == G
        assert inf + inf == inf

    def test_add_commutes(self):
        a, b = G * 5, G * 9
        assert a + b == b + a

    def test_add_associative(self):
        a, b, c = G * 2, G * 3, G * 11
        assert (a + b) + c == a + (b + c)

    def test_double_matches_add(self):
        a = G * 7
        assert a.double() == a + a

    def test_neg_cancels(self):
        a = G * 13
        assert (a + (-a)).is_infinity()

    def test_sub(self):
        assert G * 10 - G * 3 == G * 7

    def test_neg_of_infinity(self):
        assert (-G1Point.infinity()).is_infinity()

    def test_double_of_two_torsion(self):
        # No 2-torsion on this curve other than infinity (odd order).
        assert G1Point.infinity().double().is_infinity()


class TestScalarMul:
    def test_small_multiples(self):
        acc = G1Point.infinity()
        for k in range(1, 12):
            acc = acc + G
            assert G * k == acc

    def test_zero_scalar(self):
        assert (G * 0).is_infinity()

    def test_order_annihilates(self):
        assert (G * R).is_infinity()

    def test_scalar_reduced_mod_r(self):
        assert G * (R + 5) == G * 5

    def test_rmul(self):
        assert 3 * G == G * 3

    def test_distributes_over_scalars(self):
        assert G * 7 + G * 8 == G * 15

    def test_subgroup_membership(self):
        assert (G * 123).in_subgroup()


class TestJacobianFastPath:
    def test_round_trip(self):
        p = (G * 6).to_jacobian()
        assert G1Point.from_jacobian(p) == G * 6

    def test_add_matches_affine(self):
        a, b = (G * 3).to_jacobian(), (G * 4).to_jacobian()
        assert G1Point.from_jacobian(jac_add(a, b)) == G * 7

    def test_double_matches_affine(self):
        a = (G * 5).to_jacobian()
        assert G1Point.from_jacobian(jac_double(a)) == G * 10

    def test_mixed_add(self):
        a = (G * 3).to_jacobian()
        b = (G * 4)
        assert G1Point.from_jacobian(jac_add_mixed(a, (b.x, b.y))) == G * 7

    def test_mixed_add_to_infinity(self):
        assert G1Point.from_jacobian(jac_add_mixed(G1_INFINITY_JAC, (G.x, G.y))) == G

    def test_add_inverse_gives_infinity(self):
        a = (G * 9).to_jacobian()
        assert jac_is_infinity(jac_add(a, jac_neg(a)))

    def test_add_equal_points_doubles(self):
        a = (G * 9).to_jacobian()
        assert G1Point.from_jacobian(jac_add(a, a)) == G * 18

    def test_mixed_add_equal_points_doubles(self):
        p = G * 9
        assert G1Point.from_jacobian(
            jac_add_mixed(p.to_jacobian(), (p.x, p.y))
        ) == G * 18

    def test_scalar_mul_matches_class(self):
        for k in (1, 2, 255, 123456789):
            got = G1Point.from_jacobian(jac_scalar_mul(G.to_jacobian(), k))
            assert got == G * k

    def test_jacobian_z_scaling_invariance(self):
        # (X, Y, Z) and (l^2 X, l^3 Y, l Z) are the same point.
        p = (G * 7).to_jacobian()
        lam = 12345
        from repro.curves.bn254 import P as prime

        scaled = (
            p[0] * lam * lam % prime,
            p[1] * lam * lam * lam % prime,
            p[2] * lam % prime,
        )
        assert jac_to_affine(p) == jac_to_affine(scaled)


class TestValidation:
    def test_off_curve_point_detected(self):
        assert not G1Point(1, 1).is_on_curve()

    def test_infinity_on_curve(self):
        assert G1Point.infinity().is_on_curve()

    def test_eq_against_non_point(self):
        assert (G == 42) is False or (G == 42) is NotImplemented

    def test_hash_consistency(self):
        assert hash(G * 4) == hash(G * 4)

    def test_repr(self):
        assert "G1Point" in repr(G)
        assert "infinity" in repr(G1Point.infinity())
