"""Tests for losses (with gradient checks) and optimizers."""

import numpy as np
import pytest

from repro.nn.layers import Dense
from repro.nn.losses import (
    accuracy,
    binary_cross_entropy,
    cross_entropy,
    mean_squared_error,
    softmax,
)
from repro.nn.optim import SGD, Adam


class TestSoftmax:
    def test_rows_sum_to_one(self, nprng):
        probs = softmax(nprng.normal(size=(4, 7)))
        np.testing.assert_allclose(probs.sum(axis=1), np.ones(4))

    def test_shift_invariance(self, nprng):
        logits = nprng.normal(size=(2, 5))
        np.testing.assert_allclose(softmax(logits), softmax(logits + 100))

    def test_large_values_stable(self):
        probs = softmax(np.array([[1000.0, 0.0]]))
        assert np.isfinite(probs).all()


class TestCrossEntropy:
    def test_perfect_prediction_low_loss(self):
        logits = np.array([[100.0, 0.0, 0.0]])
        loss, _ = cross_entropy(logits, np.array([0]))
        assert loss < 1e-6

    def test_gradient_finite_difference(self, nprng):
        logits = nprng.normal(size=(3, 4))
        labels = np.array([0, 2, 1])
        _, grad = cross_entropy(logits, labels)
        eps = 1e-6
        for i in range(3):
            for j in range(4):
                logits[i, j] += eps
                plus, _ = cross_entropy(logits, labels)
                logits[i, j] -= 2 * eps
                minus, _ = cross_entropy(logits, labels)
                logits[i, j] += eps
                assert grad[i, j] == pytest.approx((plus - minus) / (2 * eps), abs=1e-4)


class TestBinaryCrossEntropy:
    def test_matched_targets_low_loss(self):
        probs = np.array([0.999, 0.001])
        targets = np.array([1.0, 0.0])
        loss, _ = binary_cross_entropy(probs, targets)
        assert loss < 0.01

    def test_gradient_finite_difference(self, nprng):
        probs = nprng.uniform(0.1, 0.9, 5)
        targets = nprng.integers(0, 2, 5).astype(float)
        _, grad = binary_cross_entropy(probs, targets)
        eps = 1e-7
        for i in range(5):
            probs[i] += eps
            plus, _ = binary_cross_entropy(probs, targets)
            probs[i] -= 2 * eps
            minus, _ = binary_cross_entropy(probs, targets)
            probs[i] += eps
            assert grad[i] == pytest.approx((plus - minus) / (2 * eps), rel=1e-3)

    def test_clipping_avoids_nan(self):
        loss, grad = binary_cross_entropy(np.array([0.0, 1.0]), np.array([1.0, 0.0]))
        assert np.isfinite(loss)
        assert np.isfinite(grad).all()


class TestMse:
    def test_zero_at_match(self, nprng):
        x = nprng.normal(size=(3, 3))
        loss, grad = mean_squared_error(x, x.copy())
        assert loss == 0
        np.testing.assert_allclose(grad, 0)

    def test_gradient_finite_difference(self, nprng):
        pred = nprng.normal(size=4)
        target = nprng.normal(size=4)
        _, grad = mean_squared_error(pred, target)
        eps = 1e-6
        for i in range(4):
            pred[i] += eps
            plus, _ = mean_squared_error(pred, target)
            pred[i] -= 2 * eps
            minus, _ = mean_squared_error(pred, target)
            pred[i] += eps
            assert grad[i] == pytest.approx((plus - minus) / (2 * eps), abs=1e-4)


class TestAccuracy:
    def test_perfect(self):
        logits = np.eye(3)
        assert accuracy(logits, np.array([0, 1, 2])) == 1.0

    def test_none_correct(self):
        logits = np.eye(2)
        assert accuracy(logits, np.array([1, 0])) == 0.0


def _quadratic_layer(start):
    """A Dense layer set up so training minimizes ||W||^2 via grads = 2W."""
    layer = Dense(1, 1, rng=np.random.default_rng(0))
    layer.params["W"][:] = start
    return layer


class TestOptimizers:
    @pytest.mark.parametrize("opt", [SGD(0.1), SGD(0.05, momentum=0.9), Adam(0.1)])
    def test_minimizes_quadratic(self, opt):
        layer = _quadratic_layer(5.0)
        for _ in range(200):
            layer.grads["W"] = 2 * layer.params["W"]
            layer.grads["b"] = np.zeros_like(layer.params["b"])
            opt.step([layer])
            opt.zero_grad([layer])
        assert abs(layer.params["W"].item()) < 0.05

    def test_zero_grad_clears(self):
        layer = _quadratic_layer(1.0)
        layer.grads["W"] = np.ones_like(layer.params["W"])
        SGD(0.1).zero_grad([layer])
        assert not layer.grads

    def test_step_skips_missing_grads(self):
        layer = _quadratic_layer(1.0)
        before = layer.params["W"].copy()
        SGD(0.1).step([layer])  # no grads set
        np.testing.assert_allclose(layer.params["W"], before)

    def test_adam_state_is_per_parameter(self):
        layer1 = _quadratic_layer(1.0)
        layer2 = _quadratic_layer(1.0)
        opt = Adam(0.1)
        layer1.grads["W"] = np.ones((1, 1))
        layer2.grads["W"] = -np.ones((1, 1))
        opt.step([layer1, layer2])
        assert layer1.params["W"].item() < 1.0 < layer2.params["W"].item()
