"""Ablations of the design choices DESIGN.md calls out.

1. Pairing variant: optimal Ate (6x+2 loop) vs plain Ate (t-1 loop).
2. MSM: Pippenger bucketing vs naive per-term double-and-add.
3. Fixed-point bitwidth scaling: one truncation per loop (the paper's
   "combining operations within loops") vs truncation after every multiply.
4. Sigmoid approximation degree: constraints vs accuracy.
5. Averaging order: sum-then-divide (ours) vs divide-then-sum (the layout
   the paper's Average2D constraint count suggests) -- quantifies why
   Average2D is 73x cheaper in this reproduction.
6. Final exponentiation: Devegili base-p chain vs naive 1016-bit power.
7. Verification modes: plain vs prepared-VK vs batched (n proofs).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.fixedpoint import FixedPointFormat
from repro.curves.g1 import G1Point
from repro.curves.g2 import G2Point
from repro.curves.msm import msm_g1, naive_msm_g1
from repro.curves.pairing import pairing
from repro.field.prime import BN254_R as R
from repro.gadgets.activation import (
    sigmoid_chebyshev_float,
    sigmoid_reference,
    zk_sigmoid,
)

FMT = FixedPointFormat(frac_bits=16, total_bits=48)


class TestPairingVariants:
    def test_optimal_ate_faster_than_plain_ate(self, benchmark):
        """The 6x+2 Miller loop (~65 bits) beats the t-1 loop (~127 bits)."""
        import time

        g, h = G1Point.generator() * 5, G2Point.generator() * 7

        def run():
            t0 = time.perf_counter()
            for _ in range(3):
                pairing(g, h, variant="optimal")
            t_optimal = time.perf_counter() - t0
            t0 = time.perf_counter()
            for _ in range(3):
                pairing(g, h, variant="ate")
            t_plain = time.perf_counter() - t0
            return t_optimal, t_plain

        t_optimal, t_plain = benchmark.pedantic(run, rounds=1, iterations=1)
        assert t_optimal < t_plain

    def test_both_variants_bilinear(self):
        g, h = G1Point.generator(), G2Point.generator()
        for variant in ("optimal", "ate"):
            e = pairing(g, h, variant=variant)
            assert pairing(g * 3, h * 4, variant=variant) == e.pow(12)


class TestMsmVariants:
    def test_pippenger_beats_naive(self, bench_json, benchmark):
        import random
        import time

        rng = random.Random(1)
        g = G1Point.generator()
        points = []
        for _ in range(128):
            q = g * rng.randrange(1, 500)
            points.append((q.x, q.y))
        scalars = [rng.randrange(R) for _ in range(128)]

        def run():
            t0 = time.perf_counter()
            fast = msm_g1(points, scalars)
            t_fast = time.perf_counter() - t0
            t0 = time.perf_counter()
            slow = naive_msm_g1(points, scalars)
            t_slow = time.perf_counter() - t0
            assert G1Point.from_jacobian(fast) == G1Point.from_jacobian(slow)
            return t_fast, t_slow

        t_fast, t_slow = benchmark.pedantic(run, rounds=1, iterations=1)
        assert t_fast < t_slow
        bench_json(
            "msm-128",
            pippenger_seconds=t_fast,
            naive_seconds=t_slow,
            speedup=t_slow / t_fast,
        )


class TestLoopCombining:
    def test_single_truncation_saves_constraints(self, benchmark):
        """Paper: 'combining operations within loops' -- inner products
        truncate once instead of after every multiply."""
        n = 32
        rng = np.random.default_rng(0)
        xs_f = rng.uniform(-1, 1, n)
        ys_f = rng.uniform(-1, 1, n)

        def build(combined: bool) -> int:
            b = CircuitBuilder("ip")
            xs = [b.private_input(f"x{i}", FMT.encode(v)) for i, v in enumerate(xs_f)]
            ys = [b.private_input(f"y{i}", FMT.encode(v)) for i, v in enumerate(ys_f)]
            if combined:
                FMT.inner_product(b, xs, ys)
            else:
                acc = b.zero()
                for x, y in zip(xs, ys):
                    acc = acc + FMT.mul(b, x, y)  # truncates every term
            return b.cs.num_constraints

        combined, per_term = benchmark.pedantic(
            lambda: (build(True), build(False)), rounds=1, iterations=1
        )
        # Combined: n muls + 1 truncation. Per-term: n muls + n truncations.
        assert per_term > combined * 5


class TestSigmoidDegree:
    @pytest.mark.parametrize("degree", [3, 5, 7, 9])
    def test_constraints_vs_accuracy(self, degree, benchmark):
        hi = FixedPointFormat(frac_bits=32, total_bits=100)
        xs = np.linspace(-4, 4, 17)

        def run():
            b = CircuitBuilder("sig")
            ws = [b.private_input(f"x{i}", hi.encode(v)) for i, v in enumerate(xs)]
            outs = [zk_sigmoid(b, hi, w, degree=degree) for w in ws]
            got = np.array([hi.decode(o.value) for o in outs])
            err = float(np.abs(got - sigmoid_reference(xs)).max())
            return b.cs.num_constraints, err

        constraints, err = benchmark.pedantic(run, rounds=1, iterations=1)
        # Degree 9 (the paper's choice) reaches ~2% max error on [-4, 4];
        # degree 3 is markedly worse.
        float_err = float(
            np.abs(sigmoid_chebyshev_float(xs, degree) - sigmoid_reference(xs)).max()
        )
        assert err == pytest.approx(float_err, abs=1e-4)
        if degree == 9:
            assert err < 0.05


class TestFinalExponentiation:
    def test_chain_beats_naive_power(self, benchmark):
        import random
        import time

        from repro.curves.pairing import (
            final_exponentiation,
            final_exponentiation_naive,
        )
        from repro.field.prime import BN254_P as P
        from repro.field.tower import Fp2Element, Fp6Element, Fp12Element

        rng = random.Random(0)

        def rfp12():
            def fp2():
                return Fp2Element(rng.randrange(P), rng.randrange(P))

            return Fp12Element(
                Fp6Element(fp2(), fp2(), fp2()), Fp6Element(fp2(), fp2(), fp2())
            )

        elements = [rfp12() for _ in range(3)]

        def run():
            t0 = time.perf_counter()
            fast = [final_exponentiation(f) for f in elements]
            t_fast = time.perf_counter() - t0
            t0 = time.perf_counter()
            naive = [final_exponentiation_naive(f) for f in elements]
            t_naive = time.perf_counter() - t0
            assert fast == naive
            return t_fast, t_naive

        t_fast, t_naive = benchmark.pedantic(run, rounds=1, iterations=1)
        assert t_fast < t_naive / 2


class TestVerificationModes:
    def test_prepared_and_batched_verification(self, benchmark):
        """Plain vs prepared-VK vs batched verification of 4 proofs."""
        import time

        from repro.circuit.builder import CircuitBuilder
        from repro.snark import (
            prepare_verifying_key,
            prove,
            setup,
            verify,
            verify_batch,
            verify_prepared,
        )

        def circuit(x_val):
            b = CircuitBuilder("v")
            out = b.public_output("y")
            x = b.private_input("x", x_val)
            b.bind_output(out, b.mul(x, x))
            return b

        base = circuit(3)
        kp = setup(base.cs, seed=1)
        cases = []
        for v in (2, 3, 5, 7):
            c = circuit(v)
            proof = prove(kp.proving_key, c.cs, c.assignment, seed=v)
            cases.append((c.public_values(), proof))

        def run():
            t0 = time.perf_counter()
            assert all(verify(kp.verifying_key, p, pr) for p, pr in cases)
            t_plain = time.perf_counter() - t0

            pvk = prepare_verifying_key(kp.verifying_key)
            t0 = time.perf_counter()
            assert all(verify_prepared(pvk, p, pr) for p, pr in cases)
            t_prepared = time.perf_counter() - t0

            t0 = time.perf_counter()
            assert verify_batch(kp.verifying_key, cases, seed=9)
            t_batched = time.perf_counter() - t0
            return t_plain, t_prepared, t_batched

        t_plain, t_prepared, t_batched = benchmark.pedantic(
            run, rounds=1, iterations=1
        )
        # Precomputation removes G2-side Miller work; batching shares the
        # final exponentiation and fixed-G2 pairings across all proofs.
        assert t_prepared < t_plain
        assert t_batched < t_plain


class TestAveragingOrder:
    def test_sum_then_divide_is_much_cheaper(self, benchmark):
        """Divide-then-sum pays one division gadget per *element*; summing
        first pays one per *column*.  The 128x gap matches the anomaly
        between our Average2D count and the paper's (see EXPERIMENTS.md)."""
        rows, cols = 8, 8
        rng = np.random.default_rng(0)
        data = rng.uniform(-1, 1, (rows, cols))

        def build(sum_first: bool) -> int:
            b = CircuitBuilder("avg")
            wires = [
                [b.private_input(f"m{i}_{j}", FMT.encode(data[i, j]))
                 for j in range(cols)]
                for i in range(rows)
            ]
            if sum_first:
                for j in range(cols):
                    total = b.zero()
                    for i in range(rows):
                        total = total + wires[i][j]
                    b.div_floor_const(total, rows, FMT.total_bits)
            else:
                for j in range(cols):
                    total = b.zero()
                    for i in range(rows):
                        total = total + b.div_floor_const(
                            wires[i][j], rows, FMT.total_bits
                        )
            return b.cs.num_constraints

        cheap, costly = benchmark.pedantic(
            lambda: (build(True), build(False)), rounds=1, iterations=1
        )
        assert costly >= cheap * (rows - 1)
