"""Figure 1: the full ZKROWNN protocol flow with communication accounting.

Setup party -> prover -> multiple third-party verifiers, on a genuinely
watermarked model (DeepSigns embedding run to BER 0).  Checks the paper's
communication claims structurally:

* proof transfer is constant and tiny (128 B inside a <1 KB claim);
* the setup->verifier VK transfer dominates communication (16 MB at paper
  scale; proportionally smaller here);
* one proof serves every verifier (public verifiability).
"""

from __future__ import annotations

import pytest

from repro.circuit import FixedPointFormat
from repro.zkrownn import CircuitConfig, run_ownership_protocol

CONFIG = CircuitConfig(
    theta=0.0, fixed_point=FixedPointFormat(frac_bits=14, total_bits=40)
)


def test_figure1_protocol_flow(watermarked_small_mlp, bench_json, benchmark):
    model, keys = watermarked_small_mlp

    transcript, claim = benchmark.pedantic(
        lambda: run_ownership_protocol(
            model, keys, config=CONFIG, num_verifiers=3, seed=11
        ),
        rounds=1,
        iterations=1,
    )
    bench_json(
        "figure1-protocol",
        proof_bytes=len(claim.proof_bytes),
        claim_bytes=claim.size_bytes(),
        vk_bytes=transcript.bytes_between("setup-party", "verifier-0"),
        total_bytes=transcript.total_bytes(),
        all_accepted=transcript.all_accepted,
        **transcript.timings,
    )

    # Every independent verifier accepts the single published proof.
    assert transcript.all_accepted
    assert len(transcript.reports) == 3

    # Proof communication: 128-byte proof, sub-kilobyte claim, identical
    # for every verifier (non-interactive, publicly verifiable).
    assert len(claim.proof_bytes) == 128
    for v in range(3):
        assert transcript.bytes_between("prover", f"verifier-{v}") < 1024

    # The VK transfer from the setup party dominates verifier-side
    # communication (the paper's 16 MB VK story, scaled down).
    vk_bytes = transcript.bytes_between("setup-party", "verifier-0")
    assert vk_bytes > transcript.bytes_between("prover", "verifier-0")

    # Timing shape: verification is orders of magnitude below proving,
    # and setup+prove are one-time (amortized over verifiers).
    assert transcript.timings["verify_seconds_mean"] < transcript.timings[
        "prove_seconds"
    ]
    assert transcript.timings["verify_seconds_mean"] < transcript.timings[
        "setup_seconds"
    ]


def test_figure1_false_claim_rejected(watermarked_small_mlp, benchmark):
    """A verifier holding a *different* model rejects the claim."""
    import numpy as np

    from repro.nn import mnist_mlp_scaled
    from repro.zkrownn import OwnershipProver, OwnershipVerifier, TrustedSetupParty

    model, keys = watermarked_small_mlp

    def run():
        party = TrustedSetupParty()
        party.run_ceremony(model, keys, CONFIG, seed=11)
        prover = OwnershipProver(model, keys, CONFIG)
        claim = prover.prove_ownership(party.proving_key, seed=11)
        other = mnist_mlp_scaled(input_dim=16, hidden=16,
                                 rng=np.random.default_rng(4))
        verifier = OwnershipVerifier(party.verifying_key)
        return verifier.verify(other, claim)

    report = benchmark.pedantic(run, rounds=1, iterations=1)
    assert not report.accepted
