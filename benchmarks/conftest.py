"""Benchmark configuration.

Scale selection: ``ZKROWNN_BENCH_SCALE`` environment variable, default
``reduced`` (the laptop-runnable dimensions; see repro.bench.table1).
``tiny`` cuts total runtime to well under a minute for CI-style smoke runs.

Every measured :class:`~repro.bench.metrics.CircuitReport` is collected and
printed as a Table-I style summary at the end of the session.
"""

from __future__ import annotations

import os
from typing import List

import pytest

from repro.bench.metrics import CircuitReport, format_table
from repro.bench.table1 import SCALES

_REPORTS: List[CircuitReport] = []


@pytest.fixture(scope="session")
def bench_scale():
    name = os.environ.get("ZKROWNN_BENCH_SCALE", "reduced")
    if name not in ("tiny", "reduced"):
        raise ValueError(f"ZKROWNN_BENCH_SCALE must be tiny or reduced, got {name}")
    return SCALES[name]


@pytest.fixture(scope="session")
def report_collector():
    return _REPORTS


def pytest_sessionfinish(session, exitstatus):
    if _REPORTS:
        capman = session.config.pluginmanager.getplugin("capturemanager")
        if capman:
            capman.suspend_global_capture(in_=True)
        print("\n\n# ZKROWNN Table I reproduction "
              f"(scale={os.environ.get('ZKROWNN_BENCH_SCALE', 'reduced')})\n")
        print(format_table(_REPORTS))
        print()
        if capman:
            capman.resume_global_capture()


@pytest.fixture(scope="session")
def watermarked_small_mlp():
    """A trained + watermarked model for the Figure-1 protocol benchmark."""
    import numpy as np

    from repro.datasets import mnist_like
    from repro.nn import Adam, mnist_mlp_scaled, train_classifier
    from repro.watermark import EmbedConfig, embed_watermark, generate_keys

    rng = np.random.default_rng(0)
    data = mnist_like(600, 150, image_size=4, seed=1)
    model = mnist_mlp_scaled(input_dim=16, hidden=16, rng=rng)
    train_classifier(model, data.x_train, data.y_train, Adam(0.005),
                     epochs=5, batch_size=32, rng=rng)
    keys = generate_keys(model, data.x_train, data.y_train,
                         embed_layer=1, wm_bits=8, min_triggers=4, rng=rng)
    keys.trigger_inputs = keys.trigger_inputs[:4]
    report = embed_watermark(
        model, keys, data.x_train, data.y_train,
        config=EmbedConfig(epochs=20, seed=3, lambda_projection=5.0),
    )
    assert report.ber_after == 0.0
    return model, keys
