"""Benchmark configuration.

Scale selection: ``ZKROWNN_BENCH_SCALE`` environment variable, default
``reduced`` (the laptop-runnable dimensions; see repro.bench.table1).
``tiny`` cuts total runtime to well under a minute for CI-style smoke runs.

Every measured :class:`~repro.bench.metrics.CircuitReport` is collected and
printed as a Table-I style summary at the end of the session.

Machine-readable output: each benchmark module writes a
``BENCH_<name>.json`` file (into ``ZKROWNN_BENCH_JSON_DIR``, default the
working directory) containing per-test wall times plus whatever richer
entries -- proof/key sizes, constraint counts, sweep tables -- the tests
record through the ``bench_json`` fixture.
"""

from __future__ import annotations

import json
import os
import platform
import time
from typing import Dict, List

import pytest

from repro.bench.metrics import CircuitReport, format_table
from repro.bench.table1 import SCALES

_REPORTS: List[CircuitReport] = []
_JSON_REPORTS: Dict[str, dict] = {}


def _active_field_backend() -> str:
    from repro.field.backend import active_field_backend

    return active_field_backend()


def _profile_metadata() -> dict:
    from repro.tuning.profile import active_profile_metadata

    return active_profile_metadata()


def _json_report_for(module: str) -> dict:
    """The mutable JSON payload for one benchmark module.

    Besides scale and interpreter, every payload records the kernel and
    backend configuration the numbers were produced under -- without it,
    artifact comparisons across CI runs are meaningless.
    """
    return _JSON_REPORTS.setdefault(
        module,
        {
            "benchmark": module,
            "scale": os.environ.get("ZKROWNN_BENCH_SCALE", "reduced"),
            "python": platform.python_version(),
            "machine": platform.machine(),
            "cpu_count": os.cpu_count(),
            # Environment-level defaults; benchmarks that construct their
            # own backends record the actual one per entry.
            "backend_env": os.environ.get("ZKROWNN_BACKEND", "serial"),
            "workers_env": os.environ.get("ZKROWNN_WORKERS"),
            "field_backend_env": os.environ.get("ZKROWNN_FIELD_BACKEND", "auto"),
            "field_backend": _active_field_backend(),
            # The machine profile (if any) whose tuned knobs were active
            # while these numbers were measured; see ``zkrownn tune``.
            "machine_profile": _profile_metadata(),
            "msm_kernel": "glv+signed-window+batch-affine",
            "ntt_kernel": "cached-twiddle-registry",
            "test_seconds": {},
            "entries": {},
        },
    )


@pytest.fixture
def bench_json(request):
    """Record machine-readable fields into this module's BENCH_*.json.

    Usage: ``bench_json("MNIST-MLP", proof_bytes=128, prove_seconds=3.2)``.
    Repeated calls with one name merge their fields.
    """
    module = request.module.__name__.rsplit(".", 1)[-1]

    def record(name: str, /, **fields):
        entries = _json_report_for(module)["entries"]
        entries.setdefault(name, {}).update(fields)

    return record


@pytest.fixture
def record_report(bench_json):
    """Serialize a CircuitReport into this module's BENCH_*.json."""
    import dataclasses

    def _record(report: CircuitReport):
        fields = dataclasses.asdict(report)
        bench_json(fields.pop("name"), **fields)

    return _record


def pytest_runtest_logreport(report):
    """Every benchmark test contributes at least its wall time."""
    if report.when != "call":
        return
    path = report.nodeid.split("::", 1)[0]
    module = os.path.splitext(os.path.basename(path))[0]
    if module.startswith("bench_"):
        _json_report_for(module)["test_seconds"][
            report.nodeid.split("::", 1)[-1]
        ] = report.duration


@pytest.fixture(scope="session")
def bench_scale():
    name = os.environ.get("ZKROWNN_BENCH_SCALE", "reduced")
    if name not in ("tiny", "reduced"):
        raise ValueError(f"ZKROWNN_BENCH_SCALE must be tiny or reduced, got {name}")
    return SCALES[name]


@pytest.fixture(scope="session")
def report_collector():
    return _REPORTS


@pytest.fixture(scope="session")
def proving_engine():
    """One ProvingEngine shared by the whole benchmark session.

    Table-I rows have distinct structure digests, so their timings stay
    cold-path; circuits that recur (the amortization benchmark, repeated
    shapes) hit the caches, which is the behavior under measurement.
    """
    from repro.engine import ProvingEngine

    return ProvingEngine()


def pytest_sessionfinish(session, exitstatus):
    capman = session.config.pluginmanager.getplugin("capturemanager")
    if capman:
        capman.suspend_global_capture(in_=True)
    if _REPORTS:
        print("\n\n# ZKROWNN Table I reproduction "
              f"(scale={os.environ.get('ZKROWNN_BENCH_SCALE', 'reduced')})\n")
        print(format_table(_REPORTS))
        print()
    try:
        out_dir = os.environ.get("ZKROWNN_BENCH_JSON_DIR", ".")
        os.makedirs(out_dir, exist_ok=True)
        for module, payload in sorted(_JSON_REPORTS.items()):
            payload["written_at"] = time.strftime("%Y-%m-%dT%H:%M:%S")
            name = module[len("bench_"):] if module.startswith("bench_") else module
            path = os.path.join(out_dir, f"BENCH_{name}.json")
            with open(path, "w") as fh:
                json.dump(payload, fh, indent=2, sort_keys=True)
            print(f"wrote {path}")
    finally:
        if capman:
            capman.resume_global_capture()


@pytest.fixture(scope="session")
def watermarked_small_mlp():
    """A trained + watermarked model for the Figure-1 protocol benchmark."""
    import numpy as np

    from repro.datasets import mnist_like
    from repro.nn import Adam, mnist_mlp_scaled, train_classifier
    from repro.watermark import EmbedConfig, embed_watermark, generate_keys

    rng = np.random.default_rng(0)
    data = mnist_like(600, 150, image_size=4, seed=1)
    model = mnist_mlp_scaled(input_dim=16, hidden=16, rng=rng)
    train_classifier(model, data.x_train, data.y_train, Adam(0.005),
                     epochs=5, batch_size=32, rng=rng)
    keys = generate_keys(model, data.x_train, data.y_train,
                         embed_layer=1, wm_bits=8, min_triggers=4, rng=rng)
    keys.trigger_inputs = keys.trigger_inputs[:4]
    report = embed_watermark(
        model, keys, data.x_train, data.y_train,
        config=EmbedConfig(epochs=20, seed=3, lambda_projection=5.0),
    )
    assert report.ber_after == 0.0
    return model, keys
