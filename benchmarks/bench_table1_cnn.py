"""Table I, row 9: the end-to-end CIFAR10-CNN extraction circuit.

Algorithm 1 on the Table II CNN front end (first conv layer + ReLU carry
the watermark).  The paper's headline comparison -- the CNN circuit has a
*drastically* smaller verification key than the MLP because convolution
weights are few -- is asserted as a ratio.
"""

from __future__ import annotations

import pytest

from repro.bench.cost_model import GadgetCosts
from repro.bench.metrics import measure_circuit
from repro.bench.table1 import (
    BENCH_FORMAT,
    build_cnn_extraction,
    build_mlp_extraction,
)


def test_table1_cifar10_cnn(
    bench_scale, report_collector, record_report, proving_engine, benchmark
):
    report = benchmark.pedantic(
        lambda: measure_circuit(
            "CIFAR10-CNN",
            lambda: build_cnn_extraction(bench_scale),
            engine=proving_engine,
        ),
        rounds=1,
        iterations=1,
    )
    report_collector.append(report)
    record_report(report)

    assert report.verified
    assert report.proof_bytes == 128

    # Conv kernels: 4 output channels x 3 x 3 x 3 + bias -- two orders of
    # magnitude fewer public weights than the dense MLP layer.
    kernel_weights = bench_scale.cnn_channels * 3 * 3 * 3 + bench_scale.cnn_channels
    assert report.num_public_inputs == 2 + kernel_weights

    expected = GadgetCosts(BENCH_FORMAT).cnn_extraction(
        3,
        bench_scale.cnn_image,
        bench_scale.cnn_channels,
        3,
        2,
        bench_scale.cnn_triggers,
        bench_scale.wm_bits,
    )
    assert report.num_constraints == expected


def test_cnn_vk_much_smaller_than_mlp_vk(bench_scale):
    """Paper Section IV: 'drastically reduced verifier key, due to the
    reduction of public input size' (34.651 KB vs 16,006 KB = ~460x).

    At our scale the ratio is smaller but the direction and mechanism are
    identical: VK size is 224 + 32*(public inputs + 1) bytes.
    """
    mlp = build_mlp_extraction(bench_scale)
    cnn = build_cnn_extraction(bench_scale)
    # The gap narrows at smaller widths (tiny: 58 vs 138 public inputs;
    # reduced: 114 vs 1042) but the conv instance is always much smaller.
    assert cnn.cs.num_public < mlp.cs.num_public / 2
