"""Static circuit-audit overhead: the warn-mode cost must stay noise.

``audit="warn"`` runs the *fast* structural tier inline on the engine's
cold compile path -- every structural critical detector (unbound
publics/outputs, unsatisfiable constraints) plus the unconstrained-hint
and missing-boolean checks -- once per structure digest.  The acceptance
gate: that tier costs under 10% of a cold compile on the *largest*
architecture circuit, so warn mode is safe to leave on in production
services.  The deep tier (GF(p) determinism fixpoint + duplicate scan,
what strict mode / the CLI / CI run) is recorded alongside for the
trend line; repeat claims pay nothing either way (reports are cached by
digest).
"""

from __future__ import annotations

import time

from repro.analysis import audit_compiled
from repro.bench.table1 import build_cnn_extraction, build_mlp_extraction
from repro.engine.compiled import CompiledCircuit


def _compile_and_audit(build, scale):
    t0 = time.perf_counter()
    builder = build(scale)
    compiled = CompiledCircuit.from_builder(builder)
    compile_seconds = time.perf_counter() - t0
    # Best-of-5 for the gated fast-tier number: a single ~4ms run is at
    # the mercy of GC pauses and scheduler jitter on shared runners.
    fast = min(
        (audit_compiled(compiled, deep=False) for _ in range(5)),
        key=lambda r: r.audit_seconds,
    )
    deep = audit_compiled(compiled, deep=True)
    return compiled, fast, deep, compile_seconds


def test_audit_overhead_on_largest_architecture(bench_scale, bench_json):
    # CIFAR10-CNN is the largest circuit at every scale (conv + pooling
    # dominate); MLP is recorded alongside for the trend line.
    results = {}
    for name, build in (
        ("CIFAR10-CNN", build_cnn_extraction),
        ("MNIST-MLP", build_mlp_extraction),
    ):
        compiled, fast, deep, compile_seconds = _compile_and_audit(
            build, bench_scale
        )
        assert not fast.findings, fast.render()
        assert not deep.findings, deep.render()
        ratio = fast.audit_seconds / compile_seconds
        results[name] = (compiled, fast, compile_seconds, ratio)
        bench_json(
            name,
            num_constraints=compiled.cs.num_constraints,
            num_variables=compiled.cs.num_variables,
            compile_seconds=compile_seconds,
            warn_audit_seconds=fast.audit_seconds,
            warn_audit_ratio=ratio,
            deep_audit_seconds=deep.audit_seconds,
            deep_audit_ratio=deep.audit_seconds / compile_seconds,
            passes_run_warn=len(fast.passes_run),
            passes_run_deep=len(deep.passes_run),
        )

    # The gate: warn-mode (fast tier) < 10% of cold compile on the
    # largest circuit.
    _, fast, compile_seconds, ratio = results["CIFAR10-CNN"]
    assert ratio < 0.10, (
        f"warn-mode audit cost {fast.audit_seconds:.3f}s is "
        f"{ratio:.1%} of the {compile_seconds:.3f}s cold compile "
        "(budget: 10%)"
    )


def test_cached_report_is_free(bench_scale, bench_json):
    # Second audit of the same digest through an engine is a dict lookup.
    from repro.engine import ProvingEngine

    builder = build_mlp_extraction(bench_scale)
    compiled = CompiledCircuit.from_builder(builder)
    engine = ProvingEngine(audit="warn")
    engine.audit_circuit(compiled)
    t0 = time.perf_counter()
    for _ in range(100):
        engine.audit_circuit(compiled)
    per_hit = (time.perf_counter() - t0) / 100
    bench_json("MNIST-MLP", cached_audit_seconds=per_hit)
    assert per_hit < 0.001
    assert engine.stats.audits == 1
