"""Amortization: first proof vs cached repeat proofs through ProvingEngine.

The claim under test is the architectural one this repository's staged
pipeline exists for (paper Section IV): the Groth16 setup -- and, in this
reproduction, circuit compilation too -- is one-time per circuit shape.
A second ownership claim for the same model shape pays only witness
resynthesis (a recorded-trace replay) plus proving.

Measured here end to end:

* first claim  = compile + setup + prove,
* repeat claim = trace replay + prove (compile and setup are cache hits,
  asserted via the engine's stats counters),
* witness synthesis alone: full rebuild vs trace replay.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.metrics import measure_amortized
from repro.circuit import FixedPointFormat
from repro.engine import ProvingEngine
from repro.nn import mnist_mlp_scaled
from repro.watermark.keys import WatermarkKeys
from repro.zkrownn import (
    CircuitConfig,
    build_extraction_circuit,
    extraction_synthesizer,
    extraction_structure_key,
    resynthesize_extraction_witness,
)

FMT = FixedPointFormat(frac_bits=14, total_bits=40)


def _model(seed: int, scale):
    return mnist_mlp_scaled(
        input_dim=scale.mlp_input, hidden=scale.mlp_hidden,
        rng=np.random.default_rng(seed),
    )


def _keys(model, scale, seed: int = 1) -> WatermarkKeys:
    rng = np.random.default_rng(seed)
    triggers = rng.uniform(0, 1, (scale.mlp_triggers, scale.mlp_input))
    probe = model.forward_to(triggers[:1], 1)
    feature_dim = int(np.prod(probe.shape[1:]))
    return WatermarkKeys(
        embed_layer=1,
        target_class=0,
        trigger_inputs=triggers,
        projection=rng.standard_normal((feature_dim, scale.wm_bits)),
        signature=rng.integers(0, 2, scale.wm_bits).astype(np.int64),
    )


def test_repeat_proof_amortizes(bench_scale, bench_json, benchmark):
    """Cached repeat-proof wall time sits measurably below the first proof."""
    scale = bench_scale
    config = CircuitConfig(theta=1.0, fixed_point=FMT)
    keys = _keys(_model(5, scale), scale)

    def synthesize_factory(i: int):
        # Different model weights per claim, same architecture: the shape
        # key (and hence the compiled circuit + keypair) is shared.
        return extraction_synthesizer(_model(5 + i, scale), keys, config)

    engine = ProvingEngine()
    report = benchmark.pedantic(
        lambda: measure_amortized(
            "mlp-extraction", synthesize_factory, repeats=2, seed=11,
            engine=engine,
        ),
        rounds=1,
        iterations=1,
    )

    assert report.verified
    # Compile and setup ran exactly once; both repeats were cache hits.
    assert engine.stats.compile_misses == 1
    assert engine.stats.setup_misses == 1
    assert engine.stats.witness_resyntheses == 2
    assert engine.stats.trace_divergences == 0
    # The headline claim: cached repeats are measurably faster.
    assert report.mean_repeat_seconds < 0.7 * report.first_seconds, (
        f"repeat {report.mean_repeat_seconds:.2f}s vs "
        f"first {report.first_seconds:.2f}s"
    )

    bench_json(
        "mlp-extraction",
        **report.as_dict(),
        engine_stats=engine.stats.as_dict(),
    )


def test_witness_replay_faster_than_full_build(bench_scale, bench_json, benchmark):
    """Trace replay beats a full rebuild for witness synthesis alone."""
    import time

    scale = bench_scale
    config = CircuitConfig(theta=1.0, fixed_point=FMT)
    model = _model(7, scale)
    keys = _keys(model, scale)
    engine = ProvingEngine()
    shape_key = extraction_structure_key(model, keys, config)
    compiled, _ = engine.synthesize(
        shape_key, extraction_synthesizer(model, keys, config)
    )
    other = _model(8, scale)

    def run():
        t0 = time.perf_counter()
        full = build_extraction_circuit(other, keys, config)
        t_full = time.perf_counter() - t0
        t0 = time.perf_counter()
        replay = resynthesize_extraction_witness(compiled, other, keys, config)
        t_replay = time.perf_counter() - t0
        assert replay.assignment == full.assignment
        return t_full, t_replay

    t_full, t_replay = benchmark.pedantic(run, rounds=1, iterations=1)
    assert t_replay < t_full
    bench_json(
        "witness-synthesis",
        full_build_seconds=t_full,
        trace_replay_seconds=t_replay,
        speedup=t_full / t_replay,
        num_constraints=compiled.num_constraints,
    )
