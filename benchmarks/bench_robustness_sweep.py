"""Watermark robustness sweeps (the DeepSigns claims the paper inherits).

"This WM methodology is robust to watermark overwriting, model fine-tuning
and model-pruning" (Section II-A).  These benchmarks sweep each attack's
strength and record the BER curve, printing a small table per sweep --
the DeepSigns-style series behind ZKROWNN's premise that the watermark is
still present in the disputed model.

Pure numpy (no SNARK), so these run at full sweep resolution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import mnist_like
from repro.nn import Adam, evaluate_classifier, mnist_mlp_scaled, train_classifier
from repro.watermark import (
    EmbedConfig,
    embed_watermark,
    extract_watermark,
    finetune_attack,
    generate_keys,
    prune_attack,
    quantization_attack,
    weight_noise_attack,
)


@pytest.fixture(scope="module")
def robust_model():
    """A comfortably-watermarked model (wider than the protocol fixtures)."""
    rng = np.random.default_rng(0)
    data = mnist_like(800, 200, image_size=8, seed=1)
    model = mnist_mlp_scaled(input_dim=64, hidden=32, rng=rng)
    train_classifier(model, data.x_train, data.y_train, Adam(0.005),
                     epochs=6, batch_size=32, rng=rng)
    keys = generate_keys(model, data.x_train, data.y_train,
                         embed_layer=1, wm_bits=16, min_triggers=16, rng=rng)
    report = embed_watermark(
        model, keys, data.x_train, data.y_train,
        config=EmbedConfig(epochs=30, seed=3, lambda_projection=5.0),
    )
    assert report.ber_after == 0.0
    return model, keys, data


def test_pruning_sweep(robust_model, bench_json, benchmark):
    """BER stays 0 through half the weights being removed."""
    model, keys, _ = robust_model
    fractions = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7]

    def run():
        return {
            f: extract_watermark(prune_attack(model, f), keys).ber
            for f in fractions
        }

    bers = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nprune fraction -> BER:", {f: round(b, 3) for f, b in bers.items()})
    bench_json("pruning-sweep", ber_by_fraction={str(f): b for f, b in bers.items()})
    for f in (0.1, 0.2, 0.3, 0.4, 0.5):
        assert bers[f] == 0.0, f"watermark lost at {f:.0%} pruning"
    # Monotone-ish degradation: heavier pruning never *improves* matters
    # below the detection threshold once it starts failing.
    assert bers[0.7] >= bers[0.5]


def test_finetune_sweep(robust_model, benchmark):
    """BER stays 0 across increasing fine-tuning effort."""
    model, keys, data = robust_model

    def run():
        return {
            epochs: extract_watermark(
                finetune_attack(model, data.x_train, data.y_train,
                                epochs=epochs, seed=7),
                keys,
            ).ber
            for epochs in (1, 2, 4)
        }

    bers = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nfinetune epochs -> BER:", {e: round(b, 3) for e, b in bers.items()})
    assert all(b <= 0.0625 for b in bers.values())  # at most 1 bit of 16


def test_noise_sweep(robust_model, benchmark):
    """Small perturbations leave the watermark; huge ones break the model
    before they break the watermark claim (accuracy collapses too)."""
    model, keys, data = robust_model

    def run():
        out = {}
        for scale in (0.01, 0.05, 0.1, 0.3):
            attacked = weight_noise_attack(model, scale, seed=5)
            out[scale] = (
                extract_watermark(attacked, keys).ber,
                evaluate_classifier(attacked, data.x_test, data.y_test),
            )
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nnoise scale -> (BER, accuracy):",
          {s: (round(b, 3), round(a, 2)) for s, (b, a) in results.items()})
    assert results[0.01][0] == 0.0
    assert results[0.05][0] <= 0.0625


def test_quantization_sweep(robust_model, benchmark):
    model, keys, _ = robust_model

    def run():
        return {
            bits: extract_watermark(quantization_attack(model, bits), keys).ber
            for bits in (8, 6, 4, 3, 2)
        }

    bers = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nquantization bits -> BER:", {b: round(v, 3) for b, v in bers.items()})
    for bits in (8, 6, 4):
        assert bers[bits] <= 0.0625
