"""MSM kernel ablation: naive vs PR-1 Pippenger vs GLV+signed-window vs
field backends vs parallel.

The prover's wall time is dominated by variable-base G1 MSMs, so this
benchmark isolates exactly that kernel across its implementations:

* ``naive_msm_g1``      -- double-and-add reference,
* ``msm_g1_unsigned``   -- the PR-1 Pippenger path (unsigned windows,
  Jacobian bucket adds), kept verbatim as the baseline,
* ``msm_g1``            -- GLV + signed windows + batch-affine buckets,
  under each selectable *field backend* (stdlib residues, Montgomery
  form, gmpy2 when importable),
* ``msm_g2`` vs ``msm_g2_unsigned`` -- the signed-window G2 port,
* ``ProcessBackend.msm_g1`` -- the same kernel chunked across workers,
* numpy limb-vectorized bucket accumulation vs the shared-inversion
  python rounds (the PR-10 ``numpy`` field backend), gated at n=4096.

Every row lands in ``BENCH_msm_kernels.json`` together with the window
sizes the heuristics picked, so regressions in either the kernels or the
tuning are visible from artifacts alone.  The multi-claim ``prove_batch``
comparison lives here too: serial vs process backend over one shared
prepared key.

Honest-measurement note: in pure CPython the batched-affine add costs ~6
modular multiplications against ~12 for a Jacobian mixed add, and Python's
big-int ``%`` dominates both, so the serial GLV path lands around 1.6-1.8x
over the PR-1 baseline at n=4096.  A pure-Python *Montgomery* multiply
trades that one C-level ``divmod`` for two extra big-int multiplications
and measures ~10-15% slower per operation on CPython 3.11 -- which is why
the Montgomery backend's gate below is the unsigned PR-1 baseline (beaten
~1.5x) rather than the plain-residue GLV path, and why the stdlib default
keeps canonical residues.  The real multiplication-cost lever is gmpy2:
when importable, the same kernel over ``mpz`` residues is asserted to beat
the stdlib path outright.
"""

from __future__ import annotations

import os
import random
import time

import pytest

from repro.curves.bn254 import P, R
from repro.curves.g1 import G1Point, jac_add, jac_to_affine_many
from repro.curves.msm import (
    msm_g1,
    msm_g1_unsigned,
    msm_g2,
    msm_g2_unsigned,
    naive_msm_g1,
    pippenger_window_size,
)
from repro.field.backend import (
    available_field_backends,
    get_field_ops,
    gmpy2_available,
    set_field_backend,
)
from repro.parallel import ProcessBackend, SerialBackend

_CPUS = os.cpu_count() or 1


def _inputs(n: int, seed: int = 7):
    """n distinct points (batch-normalized multiples of G) + random scalars."""
    rng = random.Random(seed)
    g = G1Point.generator()
    jacs = []
    acc = (g.x, g.y, 1)
    for _ in range(n):
        jacs.append(acc)
        acc = jac_add(acc, (g.x, g.y, 1))
    return jac_to_affine_many(jacs), [rng.randrange(R) for _ in range(n)]


def _best_of(fn, repeats: int = 2):
    best = None
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - t0
        best = elapsed if best is None else min(best, elapsed)
    return best, result


def _sizes(scale) -> list:
    # tiny keeps the CI perf-smoke job under a minute; reduced covers the
    # n=4096 headline size.
    return [256, 512] if scale.name == "tiny" else [512, 1024, 4096]


def test_msm_kernel_ablation(bench_scale, bench_json):
    """Pippenger beats naive; GLV+signed-window beats Pippenger."""
    for n in _sizes(bench_scale):
        points, scalars = _inputs(n)
        t_unsigned, r_unsigned = _best_of(lambda: msm_g1_unsigned(points, scalars))
        t_glv, r_glv = _best_of(lambda: msm_g1(points, scalars))
        assert jac_to_affine_many([r_unsigned]) == jac_to_affine_many([r_glv])
        entry = {
            "n": n,
            "unsigned_seconds": t_unsigned,
            "glv_signed_seconds": t_glv,
            "speedup_glv_vs_unsigned": t_unsigned / t_glv,
            "signed_window": pippenger_window_size(2 * n),
            "unsigned_window": pippenger_window_size(n, signed=False),
        }
        if n <= 512:
            t_naive, r_naive = _best_of(
                lambda: naive_msm_g1(points, scalars), repeats=1
            )
            assert jac_to_affine_many([r_naive]) == jac_to_affine_many([r_glv])
            entry["naive_seconds"] = t_naive
            entry["speedup_glv_vs_naive"] = t_naive / t_glv
            # The CI perf-smoke gate: the optimized kernel must never lose
            # to the reference at n=512.
            assert t_glv < t_naive, (
                f"optimized MSM slower than naive at n={n}: "
                f"{t_glv:.3f}s vs {t_naive:.3f}s"
            )
        if n >= 1024:
            assert t_glv < t_unsigned, (
                f"GLV+signed MSM slower than PR-1 Pippenger at n={n}: "
                f"{t_glv:.3f}s vs {t_unsigned:.3f}s"
            )
        bench_json(f"msm-n{n}", **entry)


def test_field_backend_ablation(bench_scale, bench_json):
    """stdlib vs Montgomery vs gmpy2 field backends on the GLV MSM kernel.

    All backends must produce identical results; the perf gates are the
    honest ones (see the module docstring): the Montgomery stdlib kernel
    must beat the PR-1 unsigned baseline at every measured size, the
    default stdlib path must not regress against it either, and gmpy2 --
    when importable -- must beat the stdlib path outright at n >= 1024.
    """
    n = _sizes(bench_scale)[-1]
    points, scalars = _inputs(n)
    t_unsigned, r_unsigned = _best_of(lambda: msm_g1_unsigned(points, scalars))
    reference = jac_to_affine_many([r_unsigned])

    times = {}
    prev = set_field_backend("python")
    try:
        for name in available_field_backends():
            set_field_backend(name)
            # Mirror the prover's prepared-key boundary: bases and scalars
            # are wrapped to backend natives once, outside the timed region.
            ops_p, ops_r = get_field_ops(P), get_field_ops(R)
            native_points = [(ops_p.wrap(x), ops_p.wrap(y)) for x, y in points]
            native_scalars = ops_r.wrap_many(scalars)
            t, r = _best_of(lambda: msm_g1(native_points, native_scalars))
            assert jac_to_affine_many([r]) == reference, (
                f"field backend {name!r} disagrees with the unsigned reference"
            )
            times[name] = t
    finally:
        set_field_backend(prev)

    entry = {
        "n": n,
        "unsigned_seconds": t_unsigned,
        "gmpy2_available": gmpy2_available(),
        "speedup_montgomery_vs_unsigned": t_unsigned / times["montgomery"],
        "speedup_python_vs_montgomery": times["montgomery"] / times["python"],
    }
    for name, t in times.items():
        entry[f"{name}_seconds"] = t
    if "gmpy2" in times:
        entry["speedup_gmpy2_vs_python"] = times["python"] / times["gmpy2"]
    bench_json(f"field-backend-n{n}", **entry)

    assert times["montgomery"] < t_unsigned, (
        f"Montgomery stdlib kernel slower than the unsigned PR-1 baseline "
        f"at n={n}: {times['montgomery']:.3f}s vs {t_unsigned:.3f}s"
    )
    assert times["python"] < t_unsigned, (
        f"default stdlib kernel slower than the unsigned PR-1 baseline "
        f"at n={n}: {times['python']:.3f}s vs {t_unsigned:.3f}s"
    )
    if "gmpy2" in times and n >= 1024:
        assert times["gmpy2"] < times["python"], (
            f"gmpy2 field backend slower than stdlib at n={n}: "
            f"{times['gmpy2']:.3f}s vs {times['python']:.3f}s"
        )


def test_numpy_kernel_ablation(bench_scale, bench_json):
    """Vectorized limb-array bucket accumulation vs the stdlib rounds.

    Reproduces the exact bucket grid a signed-window MSM scatters (the
    post-GLV shape: ``2n`` half-width scalars), then reduces it through
    both implementations: ``_reduce_buckets`` with the shared-inversion
    python adds, and ``_numpy_window_sums`` -- the gather + vectorized
    :func:`~repro.field.limb.reduce_bucket_grid` rounds the numpy field
    backend routes through (including its python handoff for narrow tail
    rounds).  Results must be identical.

    The honest gate: at the n=4096 headline size (reduced scale) the
    numpy bucket accumulation must not lose to the stdlib python rounds.
    The measured ratio is recorded either way, as is the end-to-end
    ``msm_g1`` ratio (which carries scatter/conversion overheads both
    paths share and is expected closer to parity; wide MSMs win bigger).
    """
    pytest.importorskip("numpy")
    from repro.curves.msm import (
        _batch_affine_add,
        _numpy_window_sums,
        _reduce_buckets,
        _scatter_signed_idx,
    )
    from repro.field.limb import get_limb_context

    n = _sizes(bench_scale)[-1]
    pairs = 2 * n  # GLV splits every scalar into two half-width parts
    rng = random.Random(23)
    points, _ = _inputs(pairs)
    scalars = [rng.randrange(1, 1 << 127) for _ in range(pairs)]
    c = pippenger_window_size(pairs)
    bids, pids, negs, windows = _scatter_signed_idx(scalars, c)
    n_buckets = windows * ((1 << (c - 1)) + 1)

    template: list = [[] for _ in range(n_buckets)]
    for b, i, neg in zip(bids, pids, negs):
        x, y = points[i]
        template[b].append((x, P - y) if neg else (x, y))

    def python_reduce():
        # _reduce_buckets mutates; hand it a fresh shallow copy each run.
        return _reduce_buckets([list(b) for b in template], _batch_affine_add)

    ctx = get_limb_context(P)
    xs = ctx.to_mont(ctx.to_limbs([p[0] for p in points]))
    ys = ctx.to_mont(ctx.to_limbs([p[1] for p in points]))

    def numpy_reduce():
        return _numpy_window_sums(ctx, xs, ys, bids, pids, negs, n_buckets)

    t_python, r_python = _best_of(python_reduce)
    t_numpy, r_numpy = _best_of(numpy_reduce)
    assert r_numpy == r_python, (
        "numpy bucket accumulation disagrees with the python rounds"
    )

    full_scalars = [rng.randrange(R) for _ in range(n)]
    prev = set_field_backend("python")
    try:
        t_msm_python, r_p = _best_of(
            lambda: msm_g1(points[:n], full_scalars)
        )
        set_field_backend("numpy")
        t_msm_numpy, r_n = _best_of(lambda: msm_g1(points[:n], full_scalars))
    finally:
        set_field_backend(prev)
    assert jac_to_affine_many([r_p]) == jac_to_affine_many([r_n])

    bench_json(
        f"numpy-buckets-n{n}",
        n=n,
        pairs=pairs,
        lanes=len(bids),
        window=c,
        python_bucket_seconds=t_python,
        numpy_bucket_seconds=t_numpy,
        numpy_vs_python_bucket_ratio=t_python / t_numpy,
        python_msm_seconds=t_msm_python,
        numpy_msm_seconds=t_msm_numpy,
        numpy_vs_python_msm_ratio=t_msm_python / t_msm_numpy,
    )
    if n >= 4096:
        assert t_numpy <= t_python, (
            f"numpy bucket accumulation lost to the stdlib python rounds "
            f"at n={n}: {t_numpy:.3f}s vs {t_python:.3f}s "
            f"(ratio {t_python / t_numpy:.2f}x)"
        )


def test_msm_g2_signed_vs_unsigned(bench_scale, bench_json):
    """The signed-window G2 port vs the retired unsigned Jacobian path."""
    from repro.curves.g2 import G2Point

    n = 128 if bench_scale.name == "tiny" else 256
    rng = random.Random(11)
    g2 = G2Point.generator()
    points = []
    acc = g2
    for _ in range(n):
        points.append(acc)
        acc = acc + g2
    scalars = [rng.randrange(R) for _ in range(n)]
    t_unsigned, r_unsigned = _best_of(lambda: msm_g2_unsigned(points, scalars))
    t_signed, r_signed = _best_of(lambda: msm_g2(points, scalars))
    assert r_signed == r_unsigned
    bench_json(
        f"msm-g2-n{n}",
        n=n,
        unsigned_seconds=t_unsigned,
        signed_seconds=t_signed,
        speedup_signed_vs_unsigned=t_unsigned / t_signed,
        signed_window=pippenger_window_size(n),
    )
    assert t_signed < t_unsigned, (
        f"signed-window G2 MSM slower than the unsigned baseline at n={n}: "
        f"{t_signed:.3f}s vs {t_unsigned:.3f}s"
    )


def test_msm_parallel_backend(bench_scale, bench_json):
    """Chunked multi-process MSM matches serial output; faster on >=2 cores."""
    n = _sizes(bench_scale)[-1]
    points, scalars = _inputs(n)
    backend = ProcessBackend(min(_CPUS, 4), min_msm_chunk=min(512, n // 2))
    try:
        t_serial, r_serial = _best_of(lambda: msm_g1(points, scalars))
        # First parallel call pays pool spin-up; measure the steady state.
        backend.msm_g1(points, scalars)
        t_parallel, r_parallel = _best_of(lambda: backend.msm_g1(points, scalars))
    finally:
        backend.close()
    assert jac_to_affine_many([r_serial]) == jac_to_affine_many([r_parallel])
    bench_json(
        f"msm-parallel-n{n}",
        n=n,
        backend="process",
        workers=backend.workers,
        cpu_count=_CPUS,
        serial_seconds=t_serial,
        parallel_seconds=t_parallel,
        speedup_parallel_vs_serial=t_serial / t_parallel,
    )
    # Zero-margin wall-clock orderings are flaky on small inputs and shared
    # CI runners, so the parallel-beats-serial claim is only asserted at
    # reduced scale (large MSMs) on a genuinely multi-core machine.
    if _CPUS >= 2 and bench_scale.name != "tiny":
        assert t_parallel < t_serial, (
            f"ProcessBackend slower than serial on {_CPUS} cores: "
            f"{t_parallel:.3f}s vs {t_serial:.3f}s"
        )


def _mul_chain_synthesizer(depth: int, x: int = 3):
    def synthesize(b):
        out = b.public_output("y")
        w = b.private_input("x", x)
        acc = w
        for _ in range(depth):
            acc = b.mul(acc, w)
        b.bind_output(out, acc + 1)

    return synthesize


def test_prove_batch_backends(bench_scale, bench_json):
    """Multi-claim prove_batch: serial vs process, identical proofs."""
    from repro.engine import ProvingEngine

    depth = 64 if bench_scale.name == "tiny" else 256
    claims = 4
    seeds = list(range(1, claims + 1))

    serial_engine = ProvingEngine(backend=SerialBackend())
    compiled, synthesis = serial_engine.synthesize(
        "mul-chain", _mul_chain_synthesizer(depth)
    )
    syntheses = [synthesis] * claims

    t0 = time.perf_counter()
    serial_proofs = serial_engine.prove_batch(
        compiled, syntheses, seeds=seeds, setup_seed=17
    )
    t_serial = time.perf_counter() - t0

    process_backend = ProcessBackend(min(_CPUS, claims))
    process_engine = ProvingEngine(backend=process_backend)
    compiled_p, synthesis_p = process_engine.synthesize(
        "mul-chain", _mul_chain_synthesizer(depth)
    )
    try:
        t0 = time.perf_counter()
        process_proofs = process_engine.prove_batch(
            compiled_p, [synthesis_p] * claims, seeds=seeds, setup_seed=17
        )
        t_process = time.perf_counter() - t0
    finally:
        process_backend.close()

    assert [p.to_bytes() for p in serial_proofs] == [
        p.to_bytes() for p in process_proofs
    ], "proofs must be byte-identical across backends"
    assert serial_engine.verify(
        compiled, synthesis.public_values, serial_proofs[0]
    )
    bench_json(
        "prove-batch",
        claims=claims,
        constraints=compiled.num_constraints,
        backend="process",
        workers=process_backend.workers,
        cpu_count=_CPUS,
        serial_seconds=t_serial,
        process_seconds=t_process,
        speedup_process_vs_serial=t_serial / t_process,
    )
    # See test_msm_parallel_backend: assert the ordering only where it is
    # stable (reduced scale, real multi-core).
    if _CPUS >= 2 and bench_scale.name != "tiny":
        assert t_process < t_serial, (
            f"process prove_batch slower than serial on {_CPUS} cores: "
            f"{t_process:.3f}s vs {t_serial:.3f}s"
        )
