"""Section IV shape claims: the scale-independent relationships of Table I.

The paper's quantitative story survives any constant-factor slowdown:

1. "proof size stays constant, no matter what the size of the circuit is";
2. verification cost is independent of circuit size (succinctness);
3. "the verifier key grows with the public input";
4. setup and proving are one-time / amortized across proofs.

Each claim gets a sweep at three circuit sizes.
"""

from __future__ import annotations

import time

import pytest

from repro.circuit.builder import CircuitBuilder
from repro.circuit.fixedpoint import FixedPointFormat
from repro.snark import prove, setup, verify

FMT = FixedPointFormat(frac_bits=12, total_bits=36)


def _chain_circuit(length: int, public_outputs: int = 1) -> CircuitBuilder:
    """A circuit with ~length multiplicative constraints."""
    b = CircuitBuilder(f"chain{length}")
    outs = [b.public_output(f"o{i}") for i in range(public_outputs)]
    x = b.private_input("x", 3)
    acc = x
    values = []
    for _ in range(length):
        acc = b.mul(acc, x)
        values.append(acc)
    for i, out in enumerate(outs):
        b.bind_output(out, values[min(i, len(values) - 1)])
    return b


@pytest.mark.parametrize("size", [64, 256, 1024])
def test_proof_size_constant_across_circuit_sizes(size, bench_json, benchmark):
    def run():
        b = _chain_circuit(size)
        kp = setup(b.cs, seed=1)
        proof = prove(kp.proving_key, b.cs, b.assignment, seed=2)
        assert verify(kp.verifying_key, b.public_values(), proof)
        return proof.size_bytes()

    proof_bytes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert proof_bytes == 128  # claim 1
    bench_json(f"chain{size}", proof_bytes=proof_bytes, num_constraints=size)


def test_verification_time_independent_of_circuit_size(benchmark):
    """Verify times for 64x-different circuit sizes stay within noise of
    each other, while prove times grow."""

    def run():
        timings = {}
        for size in (32, 2048):
            b = _chain_circuit(size)
            kp = setup(b.cs, seed=1)
            t0 = time.perf_counter()
            proof = prove(kp.proving_key, b.cs, b.assignment, seed=2)
            t_prove = time.perf_counter() - t0
            t0 = time.perf_counter()
            assert verify(kp.verifying_key, b.public_values(), proof)
            t_verify = time.perf_counter() - t0
            timings[size] = (t_prove, t_verify)
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)
    prove_growth = timings[2048][0] / timings[32][0]
    verify_growth = timings[2048][1] / timings[32][1]
    assert prove_growth > 4.0  # proving clearly scales with circuit size
    assert verify_growth < 3.0  # verification does not (claim 2)


def test_vk_size_linear_in_public_inputs(benchmark):
    """Claim 3: VK = 224 + 32 * (public inputs + 1) bytes exactly."""

    def run():
        sizes = {}
        for n_pub in (1, 8, 64):
            b = _chain_circuit(32, public_outputs=n_pub)
            kp = setup(b.cs, seed=1)
            sizes[n_pub] = kp.verifying_key.size_bytes()
        return sizes

    sizes = benchmark.pedantic(run, rounds=1, iterations=1)
    assert sizes[8] - sizes[1] == 7 * 32
    assert sizes[64] - sizes[8] == 56 * 32


def test_setup_and_prove_amortize_across_verifiers(bench_json, benchmark):
    """Claim 4: setup and proof generation "only happen once per circuit";
    each additional *verifier* pays only the cheap verification, so the
    one-time costs amortize over the proof's lifetime."""

    def run():
        b = _chain_circuit(2048)
        t0 = time.perf_counter()
        kp = setup(b.cs, seed=1)
        t_setup = time.perf_counter() - t0

        t0 = time.perf_counter()
        proof = prove(kp.proving_key, b.cs, b.assignment, seed=2)
        t_prove = time.perf_counter() - t0

        t0 = time.perf_counter()
        for _ in range(3):
            assert verify(kp.verifying_key, b.public_values(), proof)
        t_verify_mean = (time.perf_counter() - t0) / 3
        return t_setup, t_prove, t_verify_mean

    t_setup, t_prove, t_verify = benchmark.pedantic(run, rounds=1, iterations=1)
    one_time = t_setup + t_prove
    assert t_verify < 0.2 * one_time
    bench_json(
        "amortize-across-verifiers",
        setup_seconds=t_setup,
        prove_seconds=t_prove,
        verify_seconds_mean=t_verify,
    )
