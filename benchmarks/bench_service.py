"""Proof-service throughput: batched scheduler vs sequential claims.

The service subsystem's pitch is that many concurrent same-shape claims
cost one compile + one setup + one batched backend dispatch instead of N
sequential trips through the pipeline.  Measured here:

* ``sequential`` -- N claims via back-to-back ``prove_job`` calls on a
  fresh engine (first call pays compile + setup, the rest are cached);
* ``batched``    -- the same N claims submitted to a paused
  :class:`~repro.service.scheduler.ProofScheduler` and dispatched as one
  batch through the streaming ``prove_stream`` path.

Also measured: the wire-format overhead of a claim round trip (encode +
decode of request/claim frames), which bounds what the HTTP surface adds
on top of proving.
"""

from __future__ import annotations

import time

import numpy as np

from repro.circuit import FixedPointFormat
from repro.engine import ProvingEngine
from repro.nn import mnist_mlp_scaled
from repro.service import (
    ClaimRegistry,
    JobState,
    ProofScheduler,
    ProofTask,
    wire,
)
from repro.watermark.keys import WatermarkKeys
from repro.zkrownn import (
    CircuitConfig,
    extraction_structure_key,
    extraction_synthesizer,
)

FMT = FixedPointFormat(frac_bits=14, total_bits=40)
NUM_CLAIMS = 3


def _model(seed: int, scale):
    return mnist_mlp_scaled(
        input_dim=scale.mlp_input, hidden=scale.mlp_hidden,
        rng=np.random.default_rng(seed),
    )


def _keys(model, scale, seed: int = 1) -> WatermarkKeys:
    rng = np.random.default_rng(seed)
    triggers = rng.uniform(0, 1, (scale.mlp_triggers, scale.mlp_input))
    probe = model.forward_to(triggers[:1], 1)
    feature_dim = int(np.prod(probe.shape[1:]))
    return WatermarkKeys(
        embed_layer=1,
        target_class=0,
        trigger_inputs=triggers,
        projection=rng.standard_normal((feature_dim, scale.wm_bits)),
        signature=rng.integers(0, 2, scale.wm_bits).astype(np.int64),
    )


def test_batched_claims_vs_sequential(bench_scale, bench_json, tmp_path):
    """One scheduled batch amortizes compile/setup across N claims."""
    scale = bench_scale
    config = CircuitConfig(theta=1.0, fixed_point=FMT)
    keys = _keys(_model(5, scale), scale)
    models = [_model(5 + i, scale) for i in range(NUM_CLAIMS)]
    shape_key = extraction_structure_key(models[0], keys, config)

    # -- sequential: N prove_job round trips --------------------------------
    sequential_engine = ProvingEngine()
    t0 = time.perf_counter()
    for i, model in enumerate(models):
        sequential_engine.prove_job(
            shape_key,
            extraction_synthesizer(model, keys, config),
            seed=50 + i,
            setup_seed=9,
        )
    sequential_seconds = time.perf_counter() - t0

    # -- batched: one scheduler dispatch ------------------------------------
    engine = ProvingEngine()
    registry = ClaimRegistry(tmp_path / "bench-registry")
    scheduler = ProofScheduler(engine, registry, max_batch=NUM_CLAIMS)
    for i, model in enumerate(models):
        scheduler.submit(
            ProofTask(
                claim_id=f"bench-{i}",
                shape_key=shape_key,
                synthesize=extraction_synthesizer(model, keys, config),
                model=model,
                keys=keys,
                config=config,
                seed=50 + i,
                setup_seed=9,
            )
        )
    t0 = time.perf_counter()
    scheduler.start()
    try:
        for i in range(NUM_CLAIMS):
            assert scheduler.wait(f"bench-{i}", timeout=1200) == JobState.DONE
        batched_seconds = time.perf_counter() - t0
    finally:
        scheduler.stop()

    # The batch must actually have amortized: one compile, one setup, one
    # backend dispatch for all claims.
    assert scheduler.stats.batches == 1
    assert engine.stats.setup_misses == 1
    assert engine.stats.compile_misses == 1
    assert engine.stats.proof_batches == 1

    bench_json(
        "service-throughput",
        num_claims=NUM_CLAIMS,
        sequential_seconds=sequential_seconds,
        batched_seconds=batched_seconds,
        batched_speedup=sequential_seconds / batched_seconds,
        scheduler_stats=scheduler.stats.as_dict(),
        engine_stats=engine.stats.as_dict(),
        backend=engine.backend.name,
    )
    print(f"\n{NUM_CLAIMS} same-shape claims: sequential {sequential_seconds:.2f}s, "
          f"batched {batched_seconds:.2f}s "
          f"({sequential_seconds / batched_seconds:.2f}x)")


def test_wire_round_trip_overhead(bench_scale, bench_json):
    """Frame encode/decode cost is negligible next to proving."""
    scale = bench_scale
    model = _model(5, scale)
    keys = _keys(model, scale)
    request = wire.ClaimRequest(model=model, keys=keys,
                                config=CircuitConfig(theta=1.0, fixed_point=FMT))
    rounds = 50
    t0 = time.perf_counter()
    for _ in range(rounds):
        frame = wire.encode_claim_request(request)
        wire.decode_claim_request(frame)
    per_round_trip = (time.perf_counter() - t0) / rounds
    bench_json(
        "wire-overhead",
        request_frame_bytes=len(wire.encode_claim_request(request)),
        request_round_trip_seconds=per_round_trip,
    )
    # A request round trip must stay far below one second even on slow CI.
    assert per_round_trip < 1.0
