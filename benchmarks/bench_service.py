"""Proof-service throughput: batched scheduler vs sequential claims.

The service subsystem's pitch is that many concurrent same-shape claims
cost one compile + one setup + one batched backend dispatch instead of N
sequential trips through the pipeline.  Measured here:

* ``sequential`` -- N claims via back-to-back ``prove_job`` calls on a
  fresh engine (first call pays compile + setup, the rest are cached);
* ``batched``    -- the same N claims submitted to a paused
  :class:`~repro.service.scheduler.ProofScheduler` and dispatched as one
  batch through the streaming ``prove_stream`` path.

Also measured: the wire-format overhead of a claim round trip (encode +
decode of request/claim frames), which bounds what the HTTP surface adds
on top of proving.
"""

from __future__ import annotations

import time

import numpy as np

from repro.circuit import FixedPointFormat
from repro.engine import ProvingEngine
from repro.nn import mnist_mlp_scaled
from repro.service import (
    ClaimRegistry,
    FaultPlan,
    FaultSpec,
    JobState,
    ProofScheduler,
    ProofTask,
    wire,
)
from repro.watermark.keys import WatermarkKeys
from repro.zkrownn import (
    CircuitConfig,
    extraction_structure_key,
    extraction_synthesizer,
)

FMT = FixedPointFormat(frac_bits=14, total_bits=40)
NUM_CLAIMS = 3


def _model(seed: int, scale):
    return mnist_mlp_scaled(
        input_dim=scale.mlp_input, hidden=scale.mlp_hidden,
        rng=np.random.default_rng(seed),
    )


def _keys(model, scale, seed: int = 1) -> WatermarkKeys:
    rng = np.random.default_rng(seed)
    triggers = rng.uniform(0, 1, (scale.mlp_triggers, scale.mlp_input))
    probe = model.forward_to(triggers[:1], 1)
    feature_dim = int(np.prod(probe.shape[1:]))
    return WatermarkKeys(
        embed_layer=1,
        target_class=0,
        trigger_inputs=triggers,
        projection=rng.standard_normal((feature_dim, scale.wm_bits)),
        signature=rng.integers(0, 2, scale.wm_bits).astype(np.int64),
    )


def test_batched_claims_vs_sequential(bench_scale, bench_json, tmp_path):
    """One scheduled batch amortizes compile/setup across N claims."""
    scale = bench_scale
    config = CircuitConfig(theta=1.0, fixed_point=FMT)
    keys = _keys(_model(5, scale), scale)
    models = [_model(5 + i, scale) for i in range(NUM_CLAIMS)]
    shape_key = extraction_structure_key(models[0], keys, config)

    # -- sequential: N prove_job round trips --------------------------------
    sequential_engine = ProvingEngine()
    t0 = time.perf_counter()
    for i, model in enumerate(models):
        sequential_engine.prove_job(
            shape_key,
            extraction_synthesizer(model, keys, config),
            seed=50 + i,
            setup_seed=9,
        )
    sequential_seconds = time.perf_counter() - t0

    # -- batched: one scheduler dispatch ------------------------------------
    engine = ProvingEngine()
    registry = ClaimRegistry(tmp_path / "bench-registry")
    scheduler = ProofScheduler(engine, registry, max_batch=NUM_CLAIMS)
    for i, model in enumerate(models):
        scheduler.submit(
            ProofTask(
                claim_id=f"bench-{i}",
                shape_key=shape_key,
                synthesize=extraction_synthesizer(model, keys, config),
                model=model,
                keys=keys,
                config=config,
                seed=50 + i,
                setup_seed=9,
            )
        )
    t0 = time.perf_counter()
    scheduler.start()
    try:
        for i in range(NUM_CLAIMS):
            assert scheduler.wait(f"bench-{i}", timeout=1200) == JobState.DONE
        batched_seconds = time.perf_counter() - t0
    finally:
        scheduler.stop()

    # The batch must actually have amortized: one compile, one setup, one
    # backend dispatch for all claims.
    assert scheduler.stats.batches == 1
    assert engine.stats.setup_misses == 1
    assert engine.stats.compile_misses == 1
    assert engine.stats.proof_batches == 1

    bench_json(
        "service-throughput",
        num_claims=NUM_CLAIMS,
        sequential_seconds=sequential_seconds,
        batched_seconds=batched_seconds,
        batched_speedup=sequential_seconds / batched_seconds,
        scheduler_stats=scheduler.stats.as_dict(),
        engine_stats=engine.stats.as_dict(),
        backend=engine.backend.name,
    )
    print(f"\n{NUM_CLAIMS} same-shape claims: sequential {sequential_seconds:.2f}s, "
          f"batched {batched_seconds:.2f}s "
          f"({sequential_seconds / batched_seconds:.2f}x)")


def test_restart_recovery(bench_scale, bench_json, tmp_path):
    """Crash-safety cost: recovery re-enqueue time and the warm restart.

    A service is "killed" with N queued claims (scheduler never started),
    then a fresh service over the same registry root recovers and proves
    them.  A second kill/restart cycle with one more same-shape claim
    measures the durable-setup path: the restarted engine must load the
    keypair from the shared disk cache and perform zero fresh setups.
    """
    from repro.service import ProofService

    scale = bench_scale
    config = CircuitConfig(theta=1.0, fixed_point=FMT)
    model = _model(5, scale)
    keys = _keys(model, scale)
    root = tmp_path / "recovery-registry"

    def request_frame(seed):
        return wire.encode_claim_request(wire.ClaimRequest(
            model=model, keys=keys, config=config, seed=seed, setup_seed=9,
        ))

    # -- killed with N queued claims ----------------------------------------
    service1 = ProofService(ClaimRegistry(root))
    claim_ids = [
        service1.submit(request_frame(70 + i))["claim_id"]
        for i in range(NUM_CLAIMS)
    ]
    # (no start(): the process dies before the scheduler dispatches)

    # -- cold restart: recover + prove --------------------------------------
    service2 = ProofService(ClaimRegistry(root))
    t0 = time.perf_counter()
    service2.start()
    recovery_seconds = time.perf_counter() - t0
    try:
        assert set(service2.recovered_claims) == set(claim_ids)
        for claim_id in claim_ids:
            assert service2.scheduler.wait(claim_id, timeout=1200) == JobState.DONE
        cold_prove_seconds = time.perf_counter() - t0
        assert service2.engine.stats.setup_misses == 1
    finally:
        service2.close()

    # -- killed again with one more claim; warm restart ---------------------
    service3 = ProofService(ClaimRegistry(root))
    extra_id = service3.submit(request_frame(99))["claim_id"]

    service4 = ProofService(ClaimRegistry(root))
    t0 = time.perf_counter()
    service4.start()
    try:
        assert extra_id in service4.recovered_claims
        assert service4.scheduler.wait(extra_id, timeout=1200) == JobState.DONE
        warm_prove_seconds = time.perf_counter() - t0
        # The whole point of the shared cache: no setup ran this process.
        assert service4.engine.stats.setup_misses == 0
        assert service4.engine.stats.setup_disk_hits >= 1
    finally:
        service4.close()

    bench_json(
        "restart-recovery",
        num_recovered=NUM_CLAIMS,
        recovery_enqueue_seconds=recovery_seconds,
        cold_restart_prove_seconds=cold_prove_seconds,
        warm_restart_prove_seconds=warm_prove_seconds,
        warm_setup_disk_hits=service4.engine.stats.setup_disk_hits,
    )
    print(f"\nrecovered {NUM_CLAIMS} queued claims in {recovery_seconds * 1e3:.1f}ms; "
          f"cold restart proved in {cold_prove_seconds:.2f}s, "
          f"warm restart (disk setup) in {warm_prove_seconds:.2f}s")


def test_degraded_mode_throughput(bench_scale, bench_json, tmp_path):
    """Fault-tolerance cost: claims/sec and p99 latency at a 10% injected
    dispatch-fault rate vs a clean run.

    Each dispatch has a 10% chance of a (deterministic, seeded) transient
    backend error; the scheduler's retry machinery must absorb every one
    and still land all claims ``done``.  ``max_batch=1`` so each claim is
    its own dispatch -- the fault rate applies per claim and the latency
    distribution is per-claim, not per-batch.
    """
    scale = bench_scale
    config = CircuitConfig(theta=1.0, fixed_point=FMT)
    keys = _keys(_model(5, scale), scale)
    models = [_model(5 + i, scale) for i in range(NUM_CLAIMS)]
    shape_key = extraction_structure_key(models[0], keys, config)

    def run(tag, faults):
        engine = ProvingEngine()
        registry = ClaimRegistry(tmp_path / f"degraded-{tag}")
        scheduler = ProofScheduler(
            engine, registry, max_batch=1, max_attempts=5, faults=faults
        )
        for i, model in enumerate(models):
            scheduler.submit(
                ProofTask(
                    claim_id=f"{tag}-{i}",
                    shape_key=shape_key,
                    synthesize=extraction_synthesizer(model, keys, config),
                    model=model,
                    keys=keys,
                    config=config,
                    seed=50 + i,
                    setup_seed=9,
                )
            )
        t0 = time.perf_counter()
        scheduler.start()
        waits = []
        try:
            for i in range(NUM_CLAIMS):
                state = scheduler.wait(f"{tag}-{i}", timeout=1200)
                assert state == JobState.DONE, (tag, i, state)
                waits.append(time.perf_counter() - t0)
        finally:
            scheduler.stop()
        total = time.perf_counter() - t0
        return {
            "claims_per_second": NUM_CLAIMS / total,
            "p99_wait_seconds": float(np.percentile(waits, 99)),
            "total_seconds": total,
            "retried": scheduler.stats.retried,
            "quarantined": scheduler.stats.quarantined,
        }

    clean = run("clean", None)
    # Seed 7's deterministic coin fires within the first dispatches, so
    # the degraded run measurably exercises the retry path even at this
    # small claim count (a seed whose schedule never fires would bench a
    # clean run twice).
    plan = FaultPlan(seed=7, specs=[
        FaultSpec(site="scheduler.dispatch", kind="error",
                  error="RuntimeError", probability=0.10,
                  message="injected backend fault"),
    ])
    degraded = run("faulty", plan)
    assert plan.fired("scheduler.dispatch") >= 1
    assert degraded["retried"] >= 1
    assert degraded["quarantined"] == 0  # retries absorbed every fault

    bench_json(
        "service-degraded-mode",
        num_claims=NUM_CLAIMS,
        injected_fault_rate=0.10,
        injected_fires=plan.fired("scheduler.dispatch"),
        clean=clean,
        degraded=degraded,
        throughput_ratio=(
            degraded["claims_per_second"] / clean["claims_per_second"]
        ),
    )
    print(f"\ndegraded mode (10% dispatch faults, {plan.fired()} fired): "
          f"{degraded['claims_per_second']:.3f} claims/s "
          f"(clean {clean['claims_per_second']:.3f}), "
          f"p99 wait {degraded['p99_wait_seconds']:.2f}s "
          f"(clean {clean['p99_wait_seconds']:.2f}s), "
          f"{degraded['retried']} retries")


def test_instrumentation_overhead(bench_scale, bench_json, tmp_path):
    """Observability hooks must stay under 3% on the batched proving path.

    The same batched workload runs with observability disabled and with
    it fully enabled (tracing with a live trace id, stage metrics, span
    persistence; kernel profiling stays off, as in a default deployment).
    Runs alternate so cache warmup and machine drift hit both modes; the
    min of each mode is compared, which is the standard way to strip
    scheduler noise from a does-this-hook-cost-anything question.
    """
    from repro.obs import new_trace_id, set_obs_enabled

    scale = bench_scale
    config = CircuitConfig(theta=1.0, fixed_point=FMT)
    keys = _keys(_model(5, scale), scale)
    models = [_model(5 + i, scale) for i in range(NUM_CLAIMS)]
    shape_key = extraction_structure_key(models[0], keys, config)

    def run(tag: str) -> float:
        engine = ProvingEngine()
        registry = ClaimRegistry(tmp_path / f"obs-{tag}")
        scheduler = ProofScheduler(engine, registry, max_batch=NUM_CLAIMS)
        trace_id = new_trace_id()
        for i, model in enumerate(models):
            scheduler.submit(
                ProofTask(
                    claim_id=f"{tag}-{i}",
                    shape_key=shape_key,
                    synthesize=extraction_synthesizer(model, keys, config),
                    model=model,
                    keys=keys,
                    config=config,
                    seed=50 + i,
                    setup_seed=9,
                    trace_id=trace_id,
                )
            )
        t0 = time.perf_counter()
        scheduler.start()
        try:
            for i in range(NUM_CLAIMS):
                assert scheduler.wait(
                    f"{tag}-{i}", timeout=1200
                ) == JobState.DONE
        finally:
            scheduler.stop()
        return time.perf_counter() - t0

    pairs = 3
    disabled_times, enabled_times = [], []
    previous = set_obs_enabled(True)
    try:
        for i in range(pairs):
            set_obs_enabled(False)
            disabled_times.append(run(f"off-{i}"))
            set_obs_enabled(True)
            enabled_times.append(run(f"on-{i}"))
    finally:
        set_obs_enabled(previous)

    disabled_best = min(disabled_times)
    enabled_best = min(enabled_times)
    overhead = enabled_best / disabled_best - 1.0
    bench_json(
        "instrumentation-overhead",
        num_claims=NUM_CLAIMS,
        runs_per_mode=pairs,
        disabled_seconds=disabled_times,
        enabled_seconds=enabled_times,
        disabled_best_seconds=disabled_best,
        enabled_best_seconds=enabled_best,
        overhead_fraction=overhead,
    )
    print(f"\nobservability overhead: enabled {enabled_best:.3f}s vs "
          f"disabled {disabled_best:.3f}s ({overhead * 100:+.2f}%)")
    assert overhead < 0.03, (
        f"observability hooks cost {overhead * 100:.2f}% "
        f"(enabled {enabled_best:.3f}s vs disabled {disabled_best:.3f}s); "
        "the <3% budget is the contract that keeps them always-on"
    )


def test_wire_round_trip_overhead(bench_scale, bench_json):
    """Frame encode/decode cost is negligible next to proving."""
    scale = bench_scale
    model = _model(5, scale)
    keys = _keys(model, scale)
    request = wire.ClaimRequest(model=model, keys=keys,
                                config=CircuitConfig(theta=1.0, fixed_point=FMT))
    rounds = 50
    t0 = time.perf_counter()
    for _ in range(rounds):
        frame = wire.encode_claim_request(request)
        wire.decode_claim_request(frame)
    per_round_trip = (time.perf_counter() - t0) / rounds
    bench_json(
        "wire-overhead",
        request_frame_bytes=len(wire.encode_claim_request(request)),
        request_round_trip_seconds=per_round_trip,
    )
    # A request round trip must stay far below one second even on slow CI.
    assert per_round_trip < 1.0
