"""Table I, row 8: the end-to-end MNIST-MLP extraction circuit.

Algorithm 1 applied to the Table II MLP shape (scaled width), weights as
public inputs.  The key observation the paper makes -- the MLP's huge
verification key (16 MB) comes from exposing the dense-layer weights as
public inputs -- is asserted here structurally: the VK must dwarf the
BER/ReLU-style circuits' VKs at the same scale.
"""

from __future__ import annotations

import pytest

from repro.bench.cost_model import GadgetCosts
from repro.bench.metrics import measure_circuit
from repro.bench.table1 import BENCH_FORMAT, SCALES, build_mlp_extraction


def test_table1_mnist_mlp(
    bench_scale, report_collector, record_report, proving_engine, benchmark
):
    report = benchmark.pedantic(
        lambda: measure_circuit(
            "MNIST-MLP",
            lambda: build_mlp_extraction(bench_scale),
            engine=proving_engine,
        ),
        rounds=1,
        iterations=1,
    )
    report_collector.append(report)
    record_report(report)

    assert report.verified
    assert report.proof_bytes == 128

    # The instance includes all first-layer weights: VK grows with them.
    weights = bench_scale.mlp_input * bench_scale.mlp_hidden + bench_scale.mlp_hidden
    assert report.num_public_inputs == 2 + weights
    assert report.vk_bytes > weights * 32  # one G1 point per weight

    # Constraint count matches the validated analytic model exactly.
    expected = GadgetCosts(BENCH_FORMAT).mlp_extraction(
        bench_scale.mlp_input,
        bench_scale.mlp_hidden,
        bench_scale.mlp_triggers,
        bench_scale.wm_bits,
    )
    assert report.num_constraints == expected


def test_paper_scale_mlp_constraints_within_2x_of_paper():
    """At the paper's exact dimensions the cost model lands close to the
    published 2,093,648 constraints (EXPERIMENTS.md discusses the gap)."""
    scale = SCALES["paper"]
    count = GadgetCosts(BENCH_FORMAT).mlp_extraction(
        scale.mlp_input, scale.mlp_hidden, scale.mlp_triggers, scale.wm_bits
    )
    paper = 2_093_648
    assert 0.5 < count / paper < 2.0
