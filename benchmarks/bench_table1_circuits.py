"""Table I, rows 1-7: the individual zkSNARK circuits.

Each benchmark runs the full pipeline (build, setup, prove, verify) once
per circuit at the selected scale and records a report with all seven
Table-I columns.  Shape assertions encode the scale-independent claims:
proofs are always 128 bytes, verification succeeds, and verification time
sits orders of magnitude below proving time.

Paper values (at 128-wide dimensions) live in
``repro.bench.table1.PAPER_TABLE1``; EXPERIMENTS.md holds the side-by-side.
"""

from __future__ import annotations

import pytest

from repro.bench.metrics import measure_circuit
from repro.bench.table1 import (
    build_average2d,
    build_ber,
    build_conv3d,
    build_hardthreshold,
    build_matmult,
    build_relu,
    build_sigmoid,
)

ROWS = [
    ("MatMult", build_matmult),
    ("Conv3D", build_conv3d),
    ("ReLU", build_relu),
    ("Average2D", build_average2d),
    ("Sigmoid", build_sigmoid),
    ("HardThresholding", build_hardthreshold),
    ("BER", build_ber),
]


@pytest.mark.parametrize("name,build", ROWS, ids=[name for name, _ in ROWS])
def test_table1_individual_circuit(
    name, build, bench_scale, report_collector, record_report, proving_engine,
    benchmark,
):
    report = benchmark.pedantic(
        lambda: measure_circuit(
            name, lambda: build(bench_scale), engine=proving_engine
        ),
        rounds=1,
        iterations=1,
    )
    report_collector.append(report)
    record_report(report)

    assert report.verified, f"{name}: proof failed to verify"
    # Succinctness: every Groth16 proof is 2 G1 + 1 G2 = 128 bytes,
    # independent of circuit size (paper: constant 127.375 B).
    assert report.proof_bytes == 128
    # Verification cost is bounded by a circuit-independent constant:
    # a fixed multi-pairing plus one small MSM over the public inputs.
    # (In the paper's C++ this constant is ~1 ms; pure Python pays ~0.5 s
    # of pairing arithmetic, but it still does not grow with the circuit.)
    assert report.verify_seconds < 2.0
