"""Table II: the DNN benchmark architectures.

Builds both paper architectures at their *exact* published dimensions
(pure numpy -- no SNARK involved, so full scale is cheap), checks the
layer inventory against Table II, and benchmarks plain inference.  Also
evaluates the analytic cost model on the full architectures to give the
paper-scale "# Constraints" column of Table I's last two rows.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.bench.cost_model import GadgetCosts
from repro.bench.table1 import BENCH_FORMAT, SCALES
from repro.nn import Conv2D, Dense, Flatten, MaxPool2D, ReLU
from repro.nn.architectures import cifar10_cnn, mnist_mlp


def test_table2_mlp_inventory(benchmark):
    """784 - FC(512) - FC(512) - FC(10)."""
    model = benchmark.pedantic(
        lambda: mnist_mlp(np.random.default_rng(0)), rounds=1, iterations=1
    )
    dense = [l for l in model.layers if isinstance(l, Dense)]
    assert [(d.in_features, d.out_features) for d in dense] == [
        (784, 512),
        (512, 512),
        (512, 10),
    ]
    assert sum(isinstance(l, ReLU) for l in model.layers) == 2


def test_table2_cnn_inventory(benchmark):
    """3x32x32 - C(32,3,2) - C(32,3,1) - MP(2,1) - C(64,3,1) - C(64,3,1)
    - MP(2,1) - FC(512) - FC(10)."""
    model = benchmark.pedantic(
        lambda: cifar10_cnn(np.random.default_rng(0)), rounds=1, iterations=1
    )
    convs = [l for l in model.layers if isinstance(l, Conv2D)]
    assert [(c.in_channels, c.out_channels, c.kernel, c.stride) for c in convs] == [
        (3, 32, 3, 2),
        (32, 32, 3, 1),
        (32, 64, 3, 1),
        (64, 64, 3, 1),
    ]
    pools = [l for l in model.layers if isinstance(l, MaxPool2D)]
    assert [(p.pool, p.stride) for p in pools] == [(2, 1), (2, 1)]
    dense = [l for l in model.layers if isinstance(l, Dense)]
    assert [d.out_features for d in dense] == [512, 10]


def test_table2_mlp_inference(bench_json, benchmark):
    import time

    model = mnist_mlp(np.random.default_rng(0))
    x = np.random.default_rng(1).uniform(0, 1, (64, 784))
    out = benchmark.pedantic(lambda: model.forward(x), rounds=3, iterations=1)
    t0 = time.perf_counter()
    model.forward(x)
    bench_json("mlp-inference-batch64", seconds=time.perf_counter() - t0)
    assert out.shape == (64, 10)


def test_table2_cnn_inference(benchmark):
    model = cifar10_cnn(np.random.default_rng(0))
    x = np.random.default_rng(1).uniform(0, 1, (8, 3, 32, 32))
    out = benchmark.pedantic(lambda: model.forward(x), rounds=3, iterations=1)
    assert out.shape == (8, 10)


def test_paper_scale_extraction_costs(benchmark):
    """Cost-model evaluation of Algorithm 1 on the full Table II shapes."""
    scale = SCALES["paper"]
    costs = GadgetCosts(BENCH_FORMAT)

    def evaluate():
        return (
            costs.mlp_extraction(784, 512, scale.mlp_triggers, 32),
            costs.cnn_extraction(3, 32, 32, 3, 2, scale.cnn_triggers, 32),
        )

    mlp_count, cnn_count = benchmark.pedantic(evaluate, rounds=1, iterations=1)
    # Both land within the paper's order of magnitude (Table I: 2.09M, 591k).
    assert 1_000_000 < mlp_count < 4_200_000
    assert 250_000 < cnn_count < 2_400_000
    # And the MLP is the bigger circuit, as in the paper.
    assert mlp_count > cnn_count
