"""Embedding-depth sweep: prover complexity vs watermark layer.

Section III-B.6: "ZKROWNN still works when the watermark is embedded in
deeper layers, at the cost of higher prover complexity."  This benchmark
quantifies that cost: the extraction circuit is built with the watermark
at each successive layer boundary of an MLP, recording constraint counts
and public-input sizes (both grow with depth -- more feedforward layers
inside the circuit, more weight tensors in the instance).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.circuit import FixedPointFormat
from repro.nn import Dense, ReLU, Sequential
from repro.watermark.keys import WatermarkKeys
from repro.zkrownn import CircuitConfig, build_extraction_circuit

FMT = FixedPointFormat(frac_bits=14, total_bits=40)


def _model():
    rng = np.random.default_rng(0)
    return Sequential(
        [
            Dense(16, 12, rng=rng), ReLU(),
            Dense(12, 12, rng=rng), ReLU(),
            Dense(12, 12, rng=rng), ReLU(),
        ]
    )


def _keys(model, embed_layer):
    rng = np.random.default_rng(1)
    triggers = rng.uniform(0, 1, (2, 16))
    probe = model.forward_to(triggers[:1], embed_layer)
    feature_dim = int(np.prod(probe.shape[1:]))
    return WatermarkKeys(
        embed_layer=embed_layer,
        target_class=0,
        trigger_inputs=triggers,
        projection=rng.standard_normal((feature_dim, 8)),
        signature=rng.integers(0, 2, 8).astype(np.int64),
    )


def test_embed_depth_sweep(bench_json, benchmark):
    model = _model()
    config = CircuitConfig(theta=1.0, fixed_point=FMT)
    depths = [1, 3, 5]  # after each ReLU

    def run():
        rows = {}
        for depth in depths:
            circuit = build_extraction_circuit(model, _keys(model, depth), config)
            circuit.builder.check()
            rows[depth] = (
                circuit.constraint_system.num_constraints,
                circuit.constraint_system.num_public,
            )
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print("\nembed layer -> (constraints, public inputs):", rows)
    for depth, (constraints, publics) in rows.items():
        bench_json(
            f"embed-depth-{depth}",
            num_constraints=constraints,
            num_public_inputs=publics,
        )

    constraints = [rows[d][0] for d in depths]
    publics = [rows[d][1] for d in depths]
    # Strictly increasing prover complexity and instance size with depth.
    assert constraints == sorted(constraints)
    assert constraints[0] < constraints[-1]
    assert publics == sorted(publics)
    assert publics[0] < publics[-1]
