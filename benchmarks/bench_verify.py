"""Verifier-side scaling: single vs prepared vs batched pairing checks.

The claim under measurement: auditing n proofs through one shared-loop
random-linear-combination batch costs far less than n independent
pairing checks -- three fixed pairings plus one live Miller loop per
proof under a single squaring chain and one final exponentiation,
instead of 4n pairings.  Proofs are minted with the zero-knowledge
simulator (trapdoor forgeries verify identically to honest proofs), so
a 100-proof registry costs milliseconds to build rather than minutes.

The asserted gate -- ``batched(100) <= 0.5 * (100 * single)`` -- is the
PR's acceptance floor, deliberately loose next to the observed gain so
CI noise never flakes it.
"""

from __future__ import annotations

import time

from repro.parallel import ProcessBackend
from repro.snark import (
    ConstraintSystem,
    LinearCombination as LC,
    prepare_verifying_key,
    setup_with_trapdoor,
    simulate_proof,
    verify,
    verify_batch_prepared,
    verify_prepared,
)

BATCH_SIZES = (1, 10, 100)
SINGLE_SAMPLES = 5


def _square_circuit() -> ConstraintSystem:
    cs = ConstraintSystem()
    y = cs.allocate_public("y")
    x = cs.allocate_private("x")
    cs.enforce(LC.variable(x), LC.variable(x), LC.variable(y))
    return cs


def test_batched_verification_scaling(bench_json):
    cs = _square_circuit()
    keypair, trapdoor = setup_with_trapdoor(cs, seed=17)
    vk = keypair.verifying_key
    batch = [
        ([(v + 2) ** 2], simulate_proof(trapdoor, cs, [(v + 2) ** 2], seed=v))
        for v in range(max(BATCH_SIZES))
    ]

    # -- single: the naive per-proof pairing check ---------------------------
    t0 = time.perf_counter()
    for publics, proof in batch[:SINGLE_SAMPLES]:
        assert verify(vk, publics, proof)
    single_seconds = (time.perf_counter() - t0) / SINGLE_SAMPLES

    # -- prepared: cached G2 line coefficients, still one check per proof ----
    pvk = prepare_verifying_key(vk)
    t0 = time.perf_counter()
    for publics, proof in batch[:SINGLE_SAMPLES]:
        assert verify_prepared(pvk, publics, proof)
    prepared_seconds = (time.perf_counter() - t0) / SINGLE_SAMPLES

    # -- batched: one RLC multi-pairing per batch ----------------------------
    batched = {}
    for n in BATCH_SIZES:
        t0 = time.perf_counter()
        assert verify_batch_prepared(pvk, batch[:n], seed=1)
        batched[n] = time.perf_counter() - t0

    # -- parallel-batched: live Miller loops fanned out over processes -------
    backend = ProcessBackend(min_miller_pairs=8)
    try:
        t0 = time.perf_counter()
        assert verify_batch_prepared(pvk, batch, seed=1, backend=backend)
        parallel_seconds = time.perf_counter() - t0
        workers = backend.workers
    finally:
        backend.close()

    n_max = max(BATCH_SIZES)
    bench_json(
        "verify-scaling",
        single_seconds_per_proof=single_seconds,
        prepared_seconds_per_proof=prepared_seconds,
        batched_seconds={str(n): batched[n] for n in BATCH_SIZES},
        batched_seconds_per_proof={
            str(n): batched[n] / n for n in BATCH_SIZES
        },
        parallel_batched_seconds=parallel_seconds,
        parallel_workers=workers,
        batched_speedup_at_max=(n_max * single_seconds) / batched[n_max],
    )
    print(f"\nsingle {single_seconds * 1e3:.1f}ms/proof, "
          f"prepared {prepared_seconds * 1e3:.1f}ms/proof, "
          f"batched(100) {batched[n_max] / n_max * 1e3:.1f}ms/proof, "
          f"parallel(100, {workers}w) {parallel_seconds / n_max * 1e3:.1f}ms/proof")

    # The acceptance gate: batching 100 proofs must at least halve the
    # cost of 100 independent checks.
    assert batched[n_max] <= 0.5 * n_max * single_seconds, (
        f"batched(100) {batched[n_max]:.2f}s vs gate "
        f"{0.5 * n_max * single_seconds:.2f}s"
    )


def test_verify_batch_wire_overhead(bench_json):
    """The /verify-batch frame round trip is negligible next to pairings."""
    from repro.service import wire

    n = 100
    request = wire.VerifyBatchRequest(claim_ids=["a" * 64] * n, seed=1)
    result = wire.VerifyBatchResult(
        verdicts=[
            wire.BatchClaimVerdict("a" * 64, True, "accepted", 200)
            for _ in range(n)
        ],
        groups=[wire.BatchGroupVerdict("b" * 64, ["a" * 64] * n, True, 1.5)],
    )
    rounds = 50
    t0 = time.perf_counter()
    for _ in range(rounds):
        wire.decode_verify_batch_request(wire.encode_verify_batch_request(request))
        wire.decode_verify_batch_result(wire.encode_verify_batch_result(result))
    per_round_trip = (time.perf_counter() - t0) / rounds
    bench_json(
        "verify-batch-wire-overhead",
        claims_per_frame=n,
        request_frame_bytes=len(wire.encode_verify_batch_request(request)),
        result_frame_bytes=len(wire.encode_verify_batch_result(result)),
        round_trip_seconds=per_round_trip,
    )
    assert per_round_trip < 1.0
