"""Setup shim for environments without the ``wheel`` package.

PEP 660 editable installs (``pip install -e .``) require ``wheel``; on
offline machines without it, this shim enables the legacy path:

    pip install -e . --no-build-isolation --no-use-pep517
    # or equivalently:
    python setup.py develop
"""

from setuptools import setup

setup()
