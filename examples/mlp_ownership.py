"""MNIST-MLP ownership proof: the paper's first benchmark scenario.

A vendor trains the Table II MLP shape (scaled width for the pure-Python
prover), watermarks it with a 8-bit DeepSigns signature in the first
hidden layer, publishes the model -- and later proves ownership without
revealing trigger keys, projection matrix, or signature.

Also demonstrates artifact handling: watermark keys and ownership claims
round-trip through files, as they would in a real dispute.

Run:  python examples/mlp_ownership.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.circuit import FixedPointFormat
from repro.datasets import mnist_like
from repro.nn import Adam, evaluate_classifier, mnist_mlp_scaled, train_classifier
from repro.nn.io import load_weights, save_weights
from repro.watermark import EmbedConfig, WatermarkKeys, embed_watermark, generate_keys
from repro.zkrownn import (
    CircuitConfig,
    OwnershipClaim,
    OwnershipProver,
    OwnershipVerifier,
    TrustedSetupParty,
)


def main():
    rng = np.random.default_rng(42)
    workdir = Path(tempfile.mkdtemp(prefix="zkrownn-mlp-"))
    print(f"artifacts in {workdir}")

    # --- The vendor trains and watermarks their model -----------------------
    data = mnist_like(800, 200, image_size=4, seed=2)
    model = mnist_mlp_scaled(input_dim=16, hidden=16, rng=rng)
    train_classifier(model, data.x_train, data.y_train, Adam(0.005),
                     epochs=6, batch_size=32, rng=rng)

    keys = generate_keys(model, data.x_train, data.y_train,
                         embed_layer=1, wm_bits=8, min_triggers=4, rng=rng)
    keys.trigger_inputs = keys.trigger_inputs[:4]
    report = embed_watermark(
        model, keys, data.x_train, data.y_train, data.x_test, data.y_test,
        config=EmbedConfig(epochs=25, seed=1, lambda_projection=5.0),
    )
    assert report.ber_after == 0.0, "embedding must converge"
    print(f"watermarked: BER {report.ber_after:.2f}, "
          f"accuracy {report.accuracy_before:.2f} -> {report.accuracy_after:.2f}")

    # Keys are the owner's secret; weights are what gets published.
    keys.save(workdir / "owner_keys.npz")
    save_weights(model, workdir / "published_model.npz")

    # --- A neutral party runs the one-time trusted setup --------------------
    config = CircuitConfig(
        theta=0.0, fixed_point=FixedPointFormat(frac_bits=14, total_bits=40)
    )
    party = TrustedSetupParty("notary")
    party.run_ceremony(model, keys, config, seed=99)
    print(f"setup done: PK {party.proving_key.size_bytes()/1e6:.1f} MB, "
          f"VK {party.verifying_key.size_bytes()/1e3:.1f} KB")

    # --- The owner proves against the published model -----------------------
    loaded_keys = WatermarkKeys.load(workdir / "owner_keys.npz")
    published = mnist_mlp_scaled(input_dim=16, hidden=16,
                                 rng=np.random.default_rng(0))
    load_weights(published, workdir / "published_model.npz")

    # Sharing the notary's engine means the prover replays the circuit the
    # ceremony compiled (witness-only synthesis) and reuses its keypair.
    prover = OwnershipProver(published, loaded_keys, config, engine=party.engine)
    claim = prover.prove_ownership_cached(seed=5)
    claim.save(workdir / "ownership_claim.json")
    print(f"claim published: {claim.size_bytes()} bytes "
          f"({len(claim.proof_bytes)}-byte proof inside)")

    # --- Any third party verifies from the files alone -----------------------
    third_party_claim = OwnershipClaim.load(workdir / "ownership_claim.json")
    verifier = OwnershipVerifier(party.verifying_key)
    result = verifier.verify(published, third_party_claim)
    print(f"verifier decision: accepted={result.accepted} ({result.reason})")
    assert result.accepted

    # The watermark itself never left the owner's machine: the claim
    # contains only the proof and public parameters.
    payload = (workdir / "ownership_claim.json").read_text()
    secret_bits = "".join(map(str, loaded_keys.signature))
    assert secret_bits not in payload
    print("zero-knowledge sanity check: signature bits absent from the claim")


if __name__ == "__main__":
    main()
