"""Quickstart: prove you own a watermarked model in ~a minute.

The minimal end-to-end path through the library:

1. train a small classifier,
2. generate DeepSigns watermark keys and embed the watermark,
3. run the ZKROWNN protocol: trusted setup -> one proof -> verification,
4. file a repeat claim through the cached proving pipeline (no recompile,
   no setup -- the paper's amortization story).

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.circuit import FixedPointFormat
from repro.datasets import mnist_like
from repro.engine import ProvingEngine
from repro.nn import Adam, evaluate_classifier, mnist_mlp_scaled, train_classifier
from repro.watermark import EmbedConfig, embed_watermark, generate_keys
from repro.zkrownn import (
    CircuitConfig,
    prove_ownership_with_engine,
    run_ownership_protocol,
)


def main():
    rng = np.random.default_rng(0)

    # 1. Train a classifier on synthetic image data (offline MNIST stand-in).
    print("training a classifier ...")
    data = mnist_like(600, 150, image_size=4, seed=1)
    model = mnist_mlp_scaled(input_dim=16, hidden=16, rng=rng)
    train_classifier(model, data.x_train, data.y_train, Adam(0.005),
                     epochs=5, batch_size=32, rng=rng)
    accuracy = evaluate_classifier(model, data.x_test, data.y_test)
    print(f"  test accuracy: {accuracy:.2f}")

    # 2. Watermark it (DeepSigns): keys stay secret with the owner.
    print("embedding an 8-bit DeepSigns watermark ...")
    keys = generate_keys(model, data.x_train, data.y_train,
                         embed_layer=1, wm_bits=8, min_triggers=4, rng=rng)
    keys.trigger_inputs = keys.trigger_inputs[:4]
    report = embed_watermark(
        model, keys, data.x_train, data.y_train,
        config=EmbedConfig(epochs=20, seed=3, lambda_projection=5.0),
    )
    print(f"  BER {report.ber_before:.2f} -> {report.ber_after:.2f}, "
          f"accuracy {report.accuracy_before:.2f} -> {report.accuracy_after:.2f}")

    # 3. Prove ownership in zero knowledge and verify as a third party.
    print("running the ZKROWNN protocol (setup once, prove once, verify x3) ...")
    config = CircuitConfig(
        theta=0.0,  # exact-match BER, DeepSigns' criterion
        fixed_point=FixedPointFormat(frac_bits=14, total_bits=40),
    )
    engine = ProvingEngine()
    transcript, claim = run_ownership_protocol(
        model, keys, config=config, num_verifiers=3, seed=7, engine=engine
    )

    print(f"  setup:  {transcript.timings['setup_seconds']:7.2f} s (one-time)")
    print(f"  prove:  {transcript.timings['prove_seconds']:7.2f} s (one-time)")
    print(f"  verify: {transcript.timings['verify_seconds_mean']*1000:7.1f} ms "
          f"(per verifier)")
    print(f"  proof size: {len(claim.proof_bytes)} bytes")
    print(f"  all verifiers accepted: {transcript.all_accepted}")
    assert transcript.all_accepted

    # 4. Repeat claims amortize: same circuit shape, so the cached pipeline
    #    skips compilation and setup and only resynthesizes the witness.
    print("filing a second claim through the cached pipeline ...")
    _, job = prove_ownership_with_engine(engine, model, keys, config, seed=8)
    repeat = sum(job.timings.values())
    first = transcript.timings["setup_seconds"] + transcript.timings["prove_seconds"]
    print(f"  repeat claim: {repeat:5.2f} s vs {first:5.2f} s with setup "
          f"({first / repeat:.0f}x faster; "
          f"setup skipped: {job.reused_keypair})")


if __name__ == "__main__":
    main()
