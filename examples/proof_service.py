"""The proof service end to end: claim server + client in one process.

The deployment shape of a production ZKROWNN: a proving service accepts
ownership-claim requests over HTTP, schedules them in same-shape batches
through the cached proving engine, stores proved claims durably, and
serves verification to any third party.  This example:

1. trains + watermarks a tiny MLP (the claimant's model);
2. starts a :class:`~repro.service.server.ProofServer` over a fresh
   registry directory;
3. submits two claims for the same model shape via
   :class:`~repro.service.client.ServiceClient` -- the second rides the
   engine's compile/setup caches (asserted from ``/stats``);
4. fetches the ~460-byte claim artifact and verifies it both server-side
   (``POST /verify``) and trustlessly client-side (fetch claim + VK,
   check locally);
5. audits the whole registry through ``zkrownn audit`` -- one batched
   random-linear-combination pairing check per verifying-key group via
   ``POST /verify-batch``;
6. restarts the server over the same registry and shows the claim is
   still there -- the dispute-resolution story.

Run:  python examples/proof_service.py

``--restart-demo`` runs the crash-safety scenario instead: a server is
killed while holding queued claims, and the restarted server re-enqueues
them from their persisted request frames (no resubmission), proves them,
publishes the verifying key to the key-transparency log, and -- killed
and restarted once more with a fresh same-shape claim -- re-proves with
ZERO fresh Groth16 setups, because the engine's disk cache shares the
registry root.

Doubles as the CI service smoke test: it exits non-zero if any step --
including the cache-hit and zero-setup assertions -- fails.
``--obs-artifacts DIR`` additionally scrapes ``GET /metrics`` and the
first claim's ``GET /claims/<id>/trace`` into ``DIR`` (the CI job
uploads them), after asserting the trace covers the full lifecycle.
"""

import argparse
import json
import tempfile
from pathlib import Path

import numpy as np

from repro.circuit import FixedPointFormat
from repro.datasets import mnist_like
from repro.nn import Adam, mnist_mlp_scaled, train_classifier
from repro.service import ClaimRegistry, ProofServer, ProofService, ServiceClient
from repro.watermark import EmbedConfig, embed_watermark, generate_keys
from repro.zkrownn import CircuitConfig


def train_claimant_model(seed: int = 0):
    rng = np.random.default_rng(seed)
    data = mnist_like(600, 150, image_size=4, seed=1)
    model = mnist_mlp_scaled(input_dim=16, hidden=16, rng=rng)
    train_classifier(model, data.x_train, data.y_train, Adam(0.005),
                     epochs=5, batch_size=32, rng=rng)
    keys = generate_keys(model, data.x_train, data.y_train,
                         embed_layer=1, wm_bits=8, min_triggers=4, rng=rng)
    keys.trigger_inputs = keys.trigger_inputs[:4]
    report = embed_watermark(
        model, keys, data.x_train, data.y_train,
        config=EmbedConfig(epochs=20, seed=3, lambda_projection=5.0),
    )
    assert report.ber_after == 0.0, "embedding must converge"
    return model, keys


def dump_obs_artifacts(client, claim_id, out_dir):
    """Scrape /metrics and the claim's trace into ``out_dir`` for CI."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    metrics = client.metrics_text()
    assert "zkrownn_stage_seconds_bucket" in metrics, "no stage histograms?"
    (out / "metrics.txt").write_text(metrics)
    trace = client.trace(claim_id)
    names = [span["name"] for span in trace["spans"]]
    for stage in ("submit", "queue-wait", "lease-acquire",
                  "synthesize", "prove", "persist"):
        assert stage in names, f"trace missing stage {stage!r}: {names}"
    assert trace["trace_id"] == client.trace_id(claim_id), \
        "record lost the client-minted trace id"
    (out / "trace.json").write_text(json.dumps(trace, indent=2, sort_keys=True))
    print(f"      wrote {out / 'metrics.txt'} and {out / 'trace.json'} "
          f"({len(names)} spans)")


def main(obs_artifacts=None):
    registry_root = Path(tempfile.mkdtemp(prefix="zkrownn-service-"))
    print(f"registry at {registry_root}")

    print("[1/6] training + watermarking the claimant's model ...")
    model, keys = train_claimant_model()
    config = CircuitConfig(
        theta=0.0, fixed_point=FixedPointFormat(frac_bits=14, total_bits=40)
    )

    print("[2/6] starting the proof service ...")
    server = ProofServer(ProofService(ClaimRegistry(registry_root))).start()
    client = ServiceClient(server.url)
    print(f"      {server.url}  health: {client.health()['status']}")

    print("[3/6] submitting two same-shape claims ...")
    first = client.submit_claim(model, keys, config, seed=5, setup_seed=99)
    status = client.wait(first["claim_id"], timeout=600)
    assert status["state"] == "done", status
    print(f"      claim 1 proved in "
          f"{status['timings']['batch_prove_seconds']:.1f}s (cold: compile + setup)")

    second = client.submit_claim(model, keys, config, seed=6, setup_seed=99)
    status2 = client.wait(second["claim_id"], timeout=600)
    assert status2["state"] == "done", status2
    print(f"      claim 2 proved in "
          f"{status2['timings']['batch_prove_seconds']:.1f}s (warm caches)")

    stats = client.stats()
    engine = stats["engine"]
    assert engine["compile_hits"] >= 1, f"expected a compile cache hit: {engine}"
    assert engine["setup_hits"] >= 1, f"expected a setup cache hit: {engine}"
    assert engine["setup_misses"] == 1, f"setup must run once: {engine}"
    print(f"      /stats confirms the cache hit: compile_hits="
          f"{engine['compile_hits']}, setup_hits={engine['setup_hits']}, "
          f"setup_misses={engine['setup_misses']}")

    print("[4/6] fetching + verifying the claim ...")
    claim = client.fetch_claim(first["claim_id"])
    print(f"      claim artifact: {claim.size_bytes()} bytes "
          f"({len(claim.proof_bytes)}-byte proof)")
    remote = client.verify_remote(first["claim_id"])
    assert remote["accepted"], remote
    print(f"      server-side verify: {remote['accepted']}")
    local = client.verify_local(first["claim_id"], model)
    assert local.accepted, local.reason
    print("      trustless client-side verify (claim + VK fetched): True")

    print("[5/6] auditing the registry (zkrownn audit -> /verify-batch) ...")
    from repro.cli import main as cli_main

    batch = client.verify_batch(
        [first["claim_id"], second["claim_id"]], seed=1
    )
    assert all(v.accepted and v.status == 200 for v in batch.verdicts), batch
    assert len(batch.groups) == 1 and batch.groups[0].accepted, batch
    print(f"      2 claims, 1 VK group, batched pairing check accepted "
          f"in {batch.groups[0].seconds:.2f}s")
    assert cli_main(["audit", "--url", server.url]) == 0, "audit must pass"

    if obs_artifacts:
        print("[obs] scraping /metrics and the claim trace ...")
        dump_obs_artifacts(client, first["claim_id"], obs_artifacts)
        assert cli_main(
            ["trace", "--url", server.url, first["claim_id"]]
        ) == 0, "trace timeline must render"

    print("[6/6] restarting the server over the same registry ...")
    server.stop()
    server2 = ProofServer(ProofService(ClaimRegistry(registry_root))).start()
    client2 = ServiceClient(server2.url)
    survived = client2.fetch_claim(first["claim_id"])
    assert survived.proof_bytes == claim.proof_bytes
    assert client2.verify_remote(first["claim_id"])["accepted"]
    print("      claim survived the restart and still verifies")
    server2.stop()
    print("proof service example: all checks passed")


def restart_demo():
    """Kill a server with queued claims; watch the restart recover them."""
    registry_root = Path(tempfile.mkdtemp(prefix="zkrownn-restart-"))
    print(f"registry at {registry_root}")

    print("[1/4] training + watermarking the claimant's model ...")
    model, keys = train_claimant_model()
    config = CircuitConfig(
        theta=0.0, fixed_point=FixedPointFormat(frac_bits=14, total_bits=40)
    )

    print("[2/4] submitting two claims, then killing the server unproved ...")
    server = ProofServer(
        ProofService(ClaimRegistry(registry_root))
    ).start(start_service=False)  # HTTP up, scheduler never dispatches
    client = ServiceClient(server.url)
    first = client.submit_claim(model, keys, config, seed=11, setup_seed=99)
    second = client.submit_claim(model, keys, config, seed=12, setup_seed=99)
    assert client.health()["queue_depth"] == 2
    server.stop()
    print("      server killed with 2 claims queued (persisted frames on disk)")

    print("[3/4] restarting: recovery re-enqueues and proves, no resubmission ...")
    server2 = ProofServer(ProofService(ClaimRegistry(registry_root))).start()
    client2 = ServiceClient(server2.url)
    assert client2.health()["recovered_claims"] == 2, client2.health()
    for submitted in (first, second):
        status = client2.wait(submitted["claim_id"], timeout=600)
        assert status["state"] == "done", status
    stats = client2.stats()["engine"]
    assert stats["setup_misses"] == 1, f"one cold setup expected: {stats}"
    digest = client2.status(first["claim_id"])["circuit_digest"]
    assert client2.verify_local(
        first["claim_id"], model, circuit_digest=digest
    ).accepted
    log = client2.key_log()
    assert [e["circuit_digest"] for e in log] == [digest], log
    print(f"      both claims proved after recovery; VK {digest[:12]}... "
          "published to the key-transparency log")
    server2.stop()

    print("[4/4] killing + restarting again: known shape, ZERO fresh setups ...")
    server3 = ProofServer(
        ProofService(ClaimRegistry(registry_root))
    ).start(start_service=False)
    third = ServiceClient(server3.url).submit_claim(
        model, keys, config, seed=13, setup_seed=99
    )
    server3.stop()
    server4 = ProofServer(ProofService(ClaimRegistry(registry_root))).start()
    client4 = ServiceClient(server4.url)
    assert client4.wait(third["claim_id"], timeout=600)["state"] == "done"
    stats4 = client4.stats()["engine"]
    assert stats4["setup_misses"] == 0, f"setup must come from disk: {stats4}"
    assert stats4["setup_disk_hits"] >= 1, stats4
    assert client4.verify_local(third["claim_id"], model).accepted
    print("      recovered claim proved from the shared setup cache "
          f"(setup_disk_hits={stats4['setup_disk_hits']}, setup_misses=0)")
    server4.stop()
    print("restart-recovery demo: all checks passed")


if __name__ == "__main__":
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--restart-demo", action="store_true",
        help="run the crash-safety scenario (kill with queued claims, "
             "restart, recover, zero-setup re-prove)",
    )
    parser.add_argument(
        "--obs-artifacts", default=None, metavar="DIR",
        help="scrape GET /metrics and the first claim's trace into DIR "
             "(main demo only)",
    )
    args = parser.parse_args()
    restart_demo() if args.restart_demo else main(args.obs_artifacts)
