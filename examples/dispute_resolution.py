"""Dispute resolution: the scenario that motivates the paper.

A thief copies the owner's watermarked model, fine-tunes and prunes it to
cover their tracks, and deploys it.  The owner:

1. extracts their watermark from the *stolen, modified* model (DeepSigns
   robustness), then
2. proves ownership of it in zero knowledge to several independent
   verifiers (a court expert, a marketplace, the thief's counsel) --
   without revealing the trigger keys that would let the thief scrub the
   watermark afterwards.

Negative controls: the same claim fails against an independent model, and
an impostor with fresh keys cannot produce a claim at all.

Run:  python examples/dispute_resolution.py
"""

import numpy as np

from repro.circuit import FixedPointFormat
from repro.datasets import mnist_like
from repro.nn import Adam, mnist_mlp_scaled, train_classifier
from repro.watermark import (
    EmbedConfig,
    embed_watermark,
    extract_watermark,
    finetune_attack,
    generate_keys,
    prune_attack,
)
from repro.zkrownn import (
    CircuitConfig,
    OwnershipProver,
    OwnershipVerifier,
    ProverError,
    TrustedSetupParty,
)


def main():
    rng = np.random.default_rng(0)
    data = mnist_like(800, 200, image_size=4, seed=5)

    # --- Owner: train + watermark ------------------------------------------
    print("[owner] training and watermarking the original model ...")
    original = mnist_mlp_scaled(input_dim=16, hidden=32, rng=rng)
    train_classifier(original, data.x_train, data.y_train, Adam(0.005),
                     epochs=6, batch_size=32, rng=rng)
    keys = generate_keys(original, data.x_train, data.y_train,
                         embed_layer=1, wm_bits=8, min_triggers=4, rng=rng)
    keys.trigger_inputs = keys.trigger_inputs[:4]
    embed_watermark(
        original, keys, data.x_train, data.y_train,
        config=EmbedConfig(epochs=30, seed=1, lambda_projection=5.0),
    )
    assert extract_watermark(original, keys).ber == 0.0

    # --- Thief: copy, fine-tune, prune ---------------------------------------
    print("[thief] stealing the model, fine-tuning 2 epochs, pruning 30% ...")
    stolen = finetune_attack(original, data.x_train, data.y_train, epochs=2, seed=9)
    stolen = prune_attack(stolen, 0.3)
    ber_after_attack = extract_watermark(stolen, keys).ber
    print(f"[owner] watermark BER in the stolen+modified model: "
          f"{ber_after_attack:.3f}")

    # Tolerate up to 1 flipped bit of 8 in the dispute (theta = 0.125).
    theta = 0.125
    config = CircuitConfig(
        theta=theta, fixed_point=FixedPointFormat(frac_bits=14, total_bits=40)
    )

    # --- Neutral setup + the owner's proof ------------------------------------
    print("[notary] running the one-time trusted setup ...")
    party = TrustedSetupParty("notary")
    party.run_ceremony(stolen, keys, config, seed=21)

    print("[owner] generating the ownership proof against the stolen model ...")
    prover = OwnershipProver(stolen, keys, config, engine=party.engine)
    claim = prover.prove_ownership_cached(seed=23)
    print(f"[owner] published claim: {claim.size_bytes()} bytes")

    # --- Three independent verifiers -------------------------------------------
    for name in ("court-expert", "marketplace", "defense-counsel"):
        verifier = OwnershipVerifier(party.verifying_key)
        result = verifier.verify(stolen, claim)
        print(f"[{name}] accepted={result.accepted}")
        assert result.accepted

    # --- Negative control 1: unrelated model ------------------------------------
    print("[control] same claim against an independently trained model ...")
    unrelated = mnist_mlp_scaled(input_dim=16, hidden=32,
                                 rng=np.random.default_rng(999))
    train_classifier(unrelated, data.x_train, data.y_train, Adam(0.005),
                     epochs=6, batch_size=32, rng=np.random.default_rng(999))
    result = OwnershipVerifier(party.verifying_key).verify(unrelated, claim)
    print(f"[control] accepted={result.accepted} ({result.reason[:60]}...)")
    assert not result.accepted

    # --- Negative control 2: impostor keys ---------------------------------------
    print("[control] impostor with fresh keys tries to claim the stolen model ...")
    impostor_keys = generate_keys(stolen, data.x_train, data.y_train,
                                  embed_layer=1, wm_bits=8, min_triggers=4,
                                  rng=np.random.default_rng(31337))
    impostor_keys.trigger_inputs = impostor_keys.trigger_inputs[:4]
    impostor = OwnershipProver(stolen, impostor_keys, config)
    try:
        impostor.prove_ownership(party.proving_key, seed=1)
        raise AssertionError("impostor should not be able to claim ownership")
    except ProverError as exc:
        print(f"[control] impostor blocked: {exc}")

    print("dispute resolved: only the true owner could prove ownership.")


if __name__ == "__main__":
    main()
