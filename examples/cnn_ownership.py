"""CIFAR10-CNN ownership proof: the paper's second benchmark scenario.

The watermark lives in the activation maps of the *first convolution
layer* (paper: "assuming that the watermark is embedded in the first
hidden layer for both examples").  The headline effect this example shows:
because a conv layer has ~100x fewer weights than a dense layer, the
public instance -- and with it the verification key -- collapses
("drastically reduced verifier key, due to the reduction of public input
size", Section IV-A).

Run:  python examples/cnn_ownership.py
"""

import numpy as np

from repro.circuit import FixedPointFormat
from repro.datasets import cifar10_like
from repro.nn import Adam, cifar10_cnn_scaled, evaluate_classifier, train_classifier
from repro.watermark import EmbedConfig, embed_watermark, extract_watermark, generate_keys
from repro.zkrownn import (
    CircuitConfig,
    OwnershipProver,
    OwnershipVerifier,
    TrustedSetupParty,
    build_extraction_circuit,
)


def main():
    rng = np.random.default_rng(7)

    # --- Train + watermark the CNN ------------------------------------------
    print("training the scaled Table-II CNN ...")
    data = cifar10_like(500, 100, image_size=12, seed=3)
    model = cifar10_cnn_scaled(image_size=12, channels=4, hidden=16, rng=rng)
    train_classifier(model, data.x_train, data.y_train, Adam(0.005),
                     epochs=6, batch_size=32, rng=rng)
    print(f"  accuracy: {evaluate_classifier(model, data.x_test, data.y_test):.2f}")

    # Watermark after the first conv block's ReLU (layer index 1):
    # activations are 4 channels x 5 x 5 = 100 features.
    print("embedding a 8-bit watermark in the first conv layer's activations ...")
    keys = generate_keys(model, data.x_train, data.y_train,
                         embed_layer=1, wm_bits=8, min_triggers=2, rng=rng)
    keys.trigger_inputs = keys.trigger_inputs[:2]
    report = embed_watermark(
        model, keys, data.x_train, data.y_train,
        config=EmbedConfig(epochs=20, seed=2, lambda_projection=5.0),
    )
    print(f"  BER {report.ber_before:.2f} -> {report.ber_after:.2f}")
    assert report.ber_after == 0.0

    # --- Build the circuit and inspect the public-input effect ----------------
    config = CircuitConfig(
        theta=0.0, fixed_point=FixedPointFormat(frac_bits=14, total_bits=40)
    )
    circuit = build_extraction_circuit(model, keys, config)
    conv_weights = circuit.num_weights
    print(f"circuit: {circuit.constraint_system.num_constraints:,} constraints, "
          f"{circuit.constraint_system.num_public} public inputs "
          f"({conv_weights} conv weights -- a dense layer of the same "
          f"activation width would need thousands)")

    # --- Protocol -------------------------------------------------------------
    print("setup / prove / verify ...")
    party = TrustedSetupParty()
    party.run_ceremony(model, keys, config, seed=11)
    print(f"  VK: {party.verifying_key.size_bytes()/1e3:.1f} KB "
          "(compare the MLP example's)")

    prover = OwnershipProver(model, keys, config, engine=party.engine)
    claim = prover.prove_ownership_cached(seed=13)

    verifier = OwnershipVerifier(party.verifying_key)
    result = verifier.verify(model, claim)
    print(f"  accepted: {result.accepted}")
    assert result.accepted

    # Cross-check: circuit extraction agreed with float extraction.
    float_bits = extract_watermark(model, keys).extracted_bits
    assert circuit.extracted_bits == list(float_bits)
    print("float and in-circuit extraction agree bit-for-bit")


if __name__ == "__main__":
    main()
