"""Standalone zkSNARK circuits: the paper's modularity claim.

"Although these operations are used collectively for end-to-end watermark
extraction, each circuit can also be used in a standalone zkSNARK due to
our modular design approach ... these circuits can be combined to perform
a myriad of tasks, including verifiable machine learning inference."

This example proves three independent statements with individual gadgets:

1. MatMult  -- "I know private matrices whose product has this public trace"
2. Sigmoid  -- "these public values are the sigmoid of my private vector"
3. Inference -- a verifiable-inference sketch: "my private input classifies
   to public class c under this public model" (the paper's closing remark).

Run:  python examples/standalone_circuits.py
"""

import time

import numpy as np

from repro.circuit import CircuitBuilder, FixedPointFormat
from repro.gadgets import (
    wire_matrix,
    zk_dense,
    zk_matmul,
    zk_relu_vector,
    zk_sigmoid_vector,
)
from repro.snark import prove, setup, verify

FMT = FixedPointFormat(frac_bits=14, total_bits=40)


def run_circuit(name, builder):
    builder.check()
    t0 = time.time()
    keypair = setup(builder.cs, seed=1)
    t_setup = time.time() - t0
    t0 = time.time()
    proof = prove(keypair.proving_key, builder.cs, builder.assignment, seed=2)
    t_prove = time.time() - t0
    t0 = time.time()
    ok = verify(keypair.verifying_key, builder.public_values(), proof)
    t_verify = time.time() - t0
    print(f"  {name}: {builder.cs.num_constraints:,} constraints | "
          f"setup {t_setup:.1f}s prove {t_prove:.1f}s verify {t_verify*1000:.0f}ms "
          f"| proof {proof.size_bytes()}B | verified={ok}")
    assert ok
    return keypair, proof


def matmul_example(rng):
    """Prove knowledge of private A, B with a public product trace."""
    print("1. standalone MatMult circuit")
    a = rng.uniform(-1, 1, (4, 4))
    b_mat = rng.uniform(-1, 1, (4, 4))
    trace = float(np.trace(a @ b_mat))

    builder = CircuitBuilder("matmul-standalone")
    out = builder.public_output("trace")
    wa = wire_matrix(builder, "A", a, FMT)
    wb = wire_matrix(builder, "B", b_mat, FMT)
    product = zk_matmul(builder, FMT, wa, wb)
    trace_wire = builder.zero()
    for i in range(4):
        trace_wire = trace_wire + product[i][i]
    builder.bind_output(out, trace_wire)
    run_circuit("MatMult", builder)
    print(f"     public trace: {FMT.decode(builder.public_values()[0]):+.4f} "
          f"(true {trace:+.4f})")


def sigmoid_example(rng):
    """Prove sigmoid evaluations of a private vector."""
    print("2. standalone Sigmoid circuit (degree-9 Chebyshev)")
    xs = rng.uniform(-3, 3, 4)
    builder = CircuitBuilder("sigmoid-standalone")
    outs = [builder.public_output(f"s{i}") for i in range(len(xs))]
    ws = [builder.private_input(f"x{i}", FMT.encode(v)) for i, v in enumerate(xs)]
    for out, s in zip(outs, zk_sigmoid_vector(builder, FMT, ws)):
        builder.bind_output(out, s)
    run_circuit("Sigmoid", builder)
    decoded = [FMT.decode(v) for v in builder.public_values()]
    print(f"     public outputs: {np.round(decoded, 3)}")


def verifiable_inference_example(rng):
    """The paper's closing suggestion: verifiable DNN inference.

    Model weights public, input private: prove the model's top-scoring
    class on a hidden input, without revealing the input.
    """
    print("3. verifiable inference (public model, private input)")
    w1 = rng.uniform(-1, 1, (6, 8))
    b1 = rng.uniform(-0.5, 0.5, 6)
    w2 = rng.uniform(-1, 1, (3, 6))
    b2 = rng.uniform(-0.5, 0.5, 3)
    x = rng.uniform(0, 1, 8)

    hidden = np.maximum(w1 @ x + b1, 0)
    logits = w2 @ hidden + b2
    predicted = int(np.argmax(logits))

    builder = CircuitBuilder("inference")
    claimed = builder.public_output("argmax")
    ww1 = wire_matrix(builder, "W1", w1, FMT, private=False)
    wb1 = builder.public_inputs("b1", FMT.encode_array(b1))
    ww2 = wire_matrix(builder, "W2", w2, FMT, private=False)
    wb2 = builder.public_inputs("b2", FMT.encode_array(b2))
    wx = builder.private_inputs("x", FMT.encode_array(x))

    h = zk_dense(builder, FMT, wx, ww1, wb1)
    h = zk_relu_vector(builder, FMT, h)
    out = zk_dense(builder, FMT, h, ww2, wb2)

    # argmax via pairwise comparisons against the claimed winner.
    winner = out[predicted]
    ok = builder.one()
    for j, logit in enumerate(out):
        if j == predicted:
            continue
        ok = builder.and_(ok, builder.greater_equal(winner, logit, FMT.total_bits))
    builder.assert_equal(ok, builder.one(), "claimed class maximizes logits")
    builder.bind_output(claimed, builder.constant(predicted))
    run_circuit("Inference", builder)
    print(f"     proved: hidden input classifies to class {predicted}")


def main():
    rng = np.random.default_rng(3)
    matmul_example(rng)
    sigmoid_example(rng)
    verifiable_inference_example(rng)


if __name__ == "__main__":
    main()
