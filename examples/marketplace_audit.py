"""Marketplace audit: batch-verifying many ownership claims at once.

A model marketplace hosts several variants of a network (the original and
two attacker-modified copies).  The owner files one ownership claim per
hosted variant -- all share the same circuit shape, hence one trusted
setup and one verification key.  The marketplace audits all claims with a
*single batched pairing check* (`OwnershipVerifier.verify_many`, built on
Groth16 batch verification: n + 3 Miller loops instead of 4n).

Also shows the fallback: slipping one forged claim into the batch makes
the batch check fail, and individual re-verification attributes blame.

Run:  python examples/marketplace_audit.py
"""

import time

import numpy as np

from repro.circuit import FixedPointFormat
from repro.datasets import mnist_like
from repro.nn import Adam, mnist_mlp_scaled, train_classifier
from repro.watermark import (
    EmbedConfig,
    embed_watermark,
    extract_watermark,
    finetune_attack,
    generate_keys,
    prune_attack,
)
from repro.engine import ProvingEngine
from repro.zkrownn import (
    CircuitConfig,
    OwnershipClaim,
    OwnershipVerifier,
    TrustedSetupParty,
    prove_ownership_with_engine,
)


def main():
    rng = np.random.default_rng(8)
    data = mnist_like(700, 150, image_size=4, seed=4)

    # --- Owner trains, watermarks, and the model gets copied around ----------
    print("[owner] training + watermarking ...")
    original = mnist_mlp_scaled(input_dim=16, hidden=32, rng=rng)
    train_classifier(original, data.x_train, data.y_train, Adam(0.005),
                     epochs=6, batch_size=32, rng=rng)
    keys = generate_keys(original, data.x_train, data.y_train,
                         embed_layer=1, wm_bits=8, min_triggers=4, rng=rng)
    keys.trigger_inputs = keys.trigger_inputs[:4]
    embed_watermark(original, keys, data.x_train, data.y_train,
                    config=EmbedConfig(epochs=30, seed=1, lambda_projection=5.0))

    variants = {
        "original": original,
        "finetuned-copy": finetune_attack(original, data.x_train, data.y_train,
                                          epochs=2, seed=5),
        "pruned-copy": prune_attack(original, 0.3),
    }
    for name, m in variants.items():
        print(f"  {name}: watermark BER = {extract_watermark(m, keys).ber:.3f}")

    # --- One setup serves every claim (same circuit shape) --------------------
    config = CircuitConfig(
        theta=0.125, fixed_point=FixedPointFormat(frac_bits=14, total_bits=40)
    )
    print("[notary] one trusted setup for the shared circuit shape ...")
    engine = ProvingEngine()
    party = TrustedSetupParty("notary", engine=engine)
    party.run_ceremony(original, keys, config, seed=31)

    # All variants share the circuit shape, so only the first claim pays
    # compilation; none pays setup again (the notary's engine already has
    # the keypair), and later claims reuse the prepared proving key.
    print("[owner] filing one claim per hosted variant (shared engine) ...")
    cases = []
    for name, model in variants.items():
        claim, job = prove_ownership_with_engine(
            engine, model, keys, config, seed=hash(name) % 1000
        )
        cases.append((model, claim))
        stage = "synthesize" if job.synthesis.resynthesized else "compile"
        print(f"  claim filed for {name} ({claim.size_bytes()} bytes, "
              f"{stage}+prove {sum(job.timings.values()):.2f} s)")
    stats = engine.stats
    print(f"[owner] engine: {stats.compile_misses} compile, "
          f"{stats.witness_resyntheses} witness replays, "
          f"{stats.setup_misses} setup (of {len(cases)} claims)")

    # --- The marketplace audits everything in one batch ------------------------
    # The batched happy path is already a single multi-pairing; prepare=True
    # additionally speeds the per-claim re-verification fallback that runs
    # when a batch fails (exercised by the forged claim below).
    verifier = OwnershipVerifier(party.verifying_key, prepare=True)
    reports = verifier.verify_many(cases, seed=77)
    print(f"[marketplace] batch audit decisions: {[r.accepted for r in reports]}")
    assert all(r.accepted for r in reports)

    # Pairing-level cost comparison (same prechecks on both sides):
    # batch = n+3 Miller loops + 1 final exponentiation, individual = 5n.
    from repro.snark import verify as snark_verify
    from repro.snark import verify_batch as snark_verify_batch
    from repro.zkrownn import public_inputs_for

    instances = [
        (public_inputs_for(m, c.theta, c.wm_bits, c.embed_layer, config), c.proof)
        for m, c in cases
    ]
    t0 = time.perf_counter()
    assert snark_verify_batch(party.verifying_key, instances, seed=3)
    t_batch = time.perf_counter() - t0
    t0 = time.perf_counter()
    for publics, proof in instances:
        assert snark_verify(party.verifying_key, publics, proof)
    t_individual = time.perf_counter() - t0
    print(f"[marketplace] pairing work, batched:    {t_batch*1000:6.0f} ms")
    print(f"[marketplace] pairing work, one-by-one: {t_individual*1000:6.0f} ms")
    assert t_batch < t_individual

    # --- A forged claim in the batch gets attributed -----------------------------
    print("[marketplace] injecting a forged claim into the batch ...")
    good_claim = cases[0][1]
    corrupted = bytearray(good_claim.proof_bytes)
    corrupted[50] ^= 0x01
    forged = OwnershipClaim(
        proof_bytes=bytes(corrupted),
        theta=good_claim.theta,
        wm_bits=good_claim.wm_bits,
        embed_layer=good_claim.embed_layer,
        model_sha256=good_claim.model_sha256,
        frac_bits=good_claim.frac_bits,
        total_bits=good_claim.total_bits,
    )
    mixed = cases + [(cases[0][0], forged)]
    reports = verifier.verify_many(mixed, seed=78)
    decisions = [r.accepted for r in reports]
    print(f"[marketplace] decisions: {decisions}")
    assert decisions == [True, True, True, False]
    print("audit complete: genuine claims accepted, forgery isolated.")


if __name__ == "__main__":
    main()
